"""Command-line interface for the SAC search library.

Three subcommands cover the common workflows of a downstream user:

``generate``
    Create a synthetic spatial graph (power-law or geo-social) and save it as
    an ``.npz`` file.

``query``
    Load a graph (``.npz``) and run one SAC query with any of the algorithms,
    printing the member list and the covering circle.  Served through the
    shared-preprocessing engine unless ``--no-engine`` is given.

``batch``
    Run many SAC queries through the :class:`repro.engine.QueryEngine`-backed
    batch processor, sharing the per-graph preprocessing, and print a
    throughput summary.

``serve-batch``
    Run repeated batches through the full serving layer
    (:class:`repro.service.SACService`): shards execute on a process pool
    partitioned by k-ĉore component, and an answer cache persists across
    rounds.  Prints per-round throughput plus shard/cache statistics.

``track``
    Replay a check-in stream (from a file, or synthesised on the fly) and
    re-run SAC search for tracked users at each of their check-ins — the
    paper's dynamic scenario (Figure 13).  Served through the
    :class:`repro.engine.IncrementalEngine` unless ``--no-incremental`` is
    given, in which case every tracked check-in rebuilds all per-graph state.

``snapshot``
    Build every per-graph artifact (core decomposition, k-ĉore labellings,
    per-component bundles) for the requested ``k`` values and persist the
    lot as an :class:`repro.store.ArtifactStore` directory.  ``batch``,
    ``serve-batch``, and ``track`` accept the snapshot via ``--store`` and
    warm-start memory-mapped instead of paying the cold build.

``serve``
    Run the long-lived online serving daemon (:class:`repro.server.SACServer`):
    JSON over HTTP with micro-batched ``/query``, explicit ``/batch``,
    serialised ``/checkin``/``/edge`` mutations, ``/stats``, and
    ``/healthz``.  Warm-starts from ``--store``, snapshots to
    ``--snapshot-to`` on ``SIGUSR1`` and on shutdown, and drains gracefully
    on ``SIGTERM``/``SIGINT``.  ``--role writer|replica|coordinator`` runs
    the same daemon as one member of the replicated tier
    (:mod:`repro.replication`): the writer appends mutations to ``--wal-dir``,
    replicas tail it and serve reads, the coordinator routes between them.

``stats``
    Print the Table-4 style summary of a graph file.

Examples
--------
::

    python -m repro.cli generate --kind geosocial --vertices 5000 --out graph.npz
    python -m repro.cli query graph.npz --vertex 42 --k 4 --algorithm exact+
    python -m repro.cli batch graph.npz --count 64 --k 4 --algorithm appfast
    python -m repro.cli snapshot graph.npz --out graph.store --ks 4
    python -m repro.cli serve-batch --store graph.store --count 64 --k 4 --workers 4
    python -m repro.cli serve --store graph.store --port 8080 --workers 4
    python -m repro.cli track --store graph.store --track-count 8 --k 4
    python -m repro.cli stats graph.npz

See ``docs/cli.md`` for the full manual.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.searcher import ALGORITHMS, SACSearcher
from repro.datasets.geosocial import brightkite_like
from repro.datasets.synthetic import powerlaw_spatial_graph
from repro.engine import IncrementalEngine, QueryEngine
from repro.exceptions import InvalidParameterError, ReproError
from repro.extensions.batch import BatchSACProcessor
from repro.graph.io import load_graph_npz, save_graph_npz
from repro.graph.stats import summarize


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial-aware community (SAC) search over spatial graphs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic spatial graph")
    generate.add_argument("--kind", choices=("powerlaw", "geosocial"), default="geosocial")
    generate.add_argument("--vertices", type=int, default=5000)
    generate.add_argument("--average-degree", type=float, default=8.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .npz path")

    query = subparsers.add_parser("query", help="run one SAC query against a graph file")
    query.add_argument("graph", help="graph .npz file produced by `generate`")
    query.add_argument("--vertex", type=int, required=True, help="query vertex label")
    query.add_argument("--k", type=int, default=4, help="minimum degree threshold")
    query.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="appfast", help="SAC algorithm"
    )
    query.add_argument("--epsilon-f", type=float, default=0.5, help="AppFast slack")
    query.add_argument("--epsilon-a", type=float, default=0.5, help="AppAcc / Exact+ accuracy")
    query.add_argument(
        "--no-engine",
        action="store_true",
        help="rebuild all per-graph state for the query instead of using the shared engine",
    )

    snapshot = subparsers.add_parser(
        "snapshot",
        help="precompute engine artifacts and persist them as a store directory",
    )
    snapshot.add_argument("graph", help="graph .npz file produced by `generate`")
    snapshot.add_argument("--out", required=True, help="output store directory")
    snapshot.add_argument(
        "--ks",
        default="4",
        help="comma-separated degree thresholds to precompute (default: 4)",
    )

    batch = subparsers.add_parser(
        "batch", help="run many SAC queries with shared preprocessing"
    )
    batch.add_argument(
        "graph", nargs="?", help="graph .npz file produced by `generate`"
    )
    batch.add_argument(
        "--store",
        help="warm-start from a snapshot directory produced by `snapshot` "
        "instead of a graph file",
    )
    batch.add_argument(
        "--vertices",
        help="comma-separated query vertex labels (default: sample --count eligible vertices)",
    )
    batch.add_argument(
        "--count", type=int, default=32, help="number of random eligible query vertices"
    )
    batch.add_argument("--seed", type=int, default=0, help="sampling seed for --count")
    batch.add_argument("--k", type=int, default=4, help="minimum degree threshold")
    batch.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="appfast", help="SAC algorithm"
    )
    batch.add_argument("--epsilon-f", type=float, default=0.5, help="AppFast slack")
    batch.add_argument("--epsilon-a", type=float, default=0.5, help="AppAcc / Exact+ accuracy")
    batch.add_argument(
        "--no-plan",
        action="store_true",
        help="answer batch queries one by one instead of through the "
        "factorised batch plan",
    )
    _add_resident_budget_argument(batch)

    serve = subparsers.add_parser(
        "serve-batch",
        help="run repeated batches through the sharded, answer-cached serving layer",
    )
    serve.add_argument(
        "graph", nargs="?", help="graph .npz file produced by `generate`"
    )
    serve.add_argument(
        "--store",
        help="warm-start from a snapshot directory produced by `snapshot` "
        "instead of a graph file",
    )
    serve.add_argument(
        "--vertices",
        help="comma-separated query vertex labels (default: sample --count eligible vertices)",
    )
    serve.add_argument(
        "--count", type=int, default=64, help="number of random eligible query vertices"
    )
    serve.add_argument("--seed", type=int, default=0, help="sampling seed for --count")
    serve.add_argument("--k", type=int, default=4, help="minimum degree threshold")
    serve.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="appfast", help="SAC algorithm"
    )
    serve.add_argument("--epsilon-f", type=float, default=0.5, help="AppFast slack")
    serve.add_argument("--epsilon-a", type=float, default=0.5, help="AppAcc / Exact+ accuracy")
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool size for sharded execution (0 serves serially)",
    )
    serve.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="times the batch is submitted; rounds after the first exercise the cache",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the answer cache (every round recomputes)",
    )
    serve.add_argument(
        "--no-shared-memory",
        action="store_true",
        help="dispatch shards by re-pickling arrays every batch instead of "
        "publishing shared-memory segments once",
    )
    serve.add_argument(
        "--no-plan",
        action="store_true",
        help="answer batch queries one by one instead of through the "
        "factorised batch plan",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-round deadline budget: answer each batch through the SLO "
        "algorithm ladder, --algorithm becoming the quality ceiling",
    )
    _add_resident_budget_argument(serve)

    daemon = subparsers.add_parser(
        "serve",
        help="run the long-lived online serving daemon (JSON over HTTP, micro-batched)",
    )
    daemon.add_argument(
        "graph", nargs="?", help="graph .npz file produced by `generate`"
    )
    daemon.add_argument(
        "--store",
        help="warm-start from a snapshot directory produced by `snapshot` "
        "instead of a graph file",
    )
    daemon.add_argument("--host", default="127.0.0.1", help="listen address")
    daemon.add_argument(
        "--port", type=int, default=8080, help="listen port (0 binds an ephemeral port)"
    )
    daemon.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for sharded batch execution (0 serves serially)",
    )
    daemon.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch flush threshold: coalesce at most this many concurrent queries",
    )
    daemon.add_argument(
        "--linger-ms",
        type=float,
        default=5.0,
        help="micro-batch flush deadline: a query waits at most this long to be coalesced",
    )
    daemon.add_argument(
        "--warm-ks",
        default="",
        help="comma-separated degree thresholds to prepare before accepting traffic",
    )
    daemon.add_argument(
        "--snapshot-to",
        help="store directory written on SIGUSR1 and on shutdown (disabled when omitted)",
    )
    daemon.add_argument(
        "--max-body-bytes",
        type=int,
        default=1 << 20,
        help="largest accepted request body (larger requests get HTTP 413)",
    )
    daemon.add_argument(
        "--max-batch-queries",
        type=int,
        default=1024,
        help="largest accepted explicit /batch (larger batches get HTTP 413)",
    )
    daemon.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the answer cache (every query recomputes)",
    )
    daemon.add_argument(
        "--no-shared-memory",
        action="store_true",
        help="dispatch shards by re-pickling arrays every batch instead of "
        "publishing shared-memory segments once",
    )
    daemon.add_argument(
        "--no-plan",
        action="store_true",
        help="answer batch queries one by one instead of through the "
        "factorised batch plan",
    )
    daemon.add_argument(
        "--static",
        action="store_true",
        help="serve a read-only QueryEngine (mutation endpoints answer 400)",
    )
    daemon.add_argument(
        "--slo",
        action="store_true",
        help="calibrate the SLO cost model at start-up for every --warm-ks "
        "threshold, so the first deadline-carrying request pays no probes",
    )
    daemon.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline applied to /query and /batch requests that carry no "
        "deadline_ms of their own (default: best-effort, no deadline)",
    )
    daemon.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        help="admission limit per lane: queued queries beyond this are "
        "refused with HTTP 429 + Retry-After",
    )
    daemon.add_argument(
        "--retry-after-seconds",
        type=float,
        default=1.0,
        help="the Retry-After backoff advertised on 429 responses "
        "(integer-valued per RFC 9110: sub-second values advertise 1)",
    )
    daemon.add_argument(
        "--poll-timeout-ms",
        type=float,
        default=30000.0,
        help="longest a GET /subscribe long-poll parks before answering "
        "empty (also the streaming heartbeat cadence)",
    )
    daemon.add_argument(
        "--subscription-backlog",
        type=int,
        default=64,
        help="per-subscription pending-delta bound; a consumer that falls "
        "further behind gets one full-snapshot resync instead",
    )
    daemon.add_argument(
        "--subscription-idle-seconds",
        type=float,
        default=300.0,
        help="expire subscriptions with no poll/stream contact for this "
        "long (0 disables idle GC)",
    )
    daemon.add_argument(
        "--role",
        choices=("writer", "replica", "coordinator"),
        default=None,
        help="replication role: 'writer' appends every mutation to --wal-dir, "
        "'replica' tails --wal-dir read-only and refuses mutations, "
        "'coordinator' proxies traffic across --writer-addr/--replicas "
        "(default: standalone, no replication)",
    )
    daemon.add_argument(
        "--wal-dir",
        help="write-ahead log directory shared by the writer and its replicas "
        "(required for --role writer and --role replica)",
    )
    daemon.add_argument(
        "--wal-fsync",
        action="store_true",
        help="fsync the WAL after every append (machine-crash durability at "
        "a heavy per-mutation cost)",
    )
    daemon.add_argument(
        "--writer-url",
        help="the writer's base URL, advertised in a replica's 403 mutation "
        "refusals (replica role only)",
    )
    daemon.add_argument(
        "--poll-interval-ms",
        type=float,
        default=25.0,
        help="how often a replica polls the WAL for new records (replica role only)",
    )
    daemon.add_argument(
        "--writer-addr",
        help="the writer backend as host:port (coordinator role only)",
    )
    daemon.add_argument(
        "--replicas",
        default="",
        help="comma-separated replica backends as host:port (coordinator role only)",
    )
    daemon.add_argument(
        "--max-staleness-lsn",
        type=int,
        default=0,
        help="bounded staleness: a replica may serve reads while at most this "
        "many WAL records behind the writer (coordinator role only)",
    )
    daemon.add_argument(
        "--health-interval-ms",
        type=float,
        default=200.0,
        help="backend /healthz probe period, the failover detection latency "
        "(coordinator role only)",
    )
    _add_resident_budget_argument(daemon)

    track = subparsers.add_parser(
        "track", help="replay a check-in stream and track users' communities"
    )
    track.add_argument(
        "graph", nargs="?", help="graph .npz file produced by `generate`"
    )
    track.add_argument(
        "--store",
        help="warm-start the incremental engine from a snapshot directory "
        "produced by `snapshot` instead of a graph file",
    )
    track.add_argument(
        "--checkins",
        help="check-in file (`user timestamp x y` per line); synthesised when omitted",
    )
    track.add_argument(
        "--users",
        help="comma-separated labels of users to track (default: the --track-count most mobile)",
    )
    track.add_argument(
        "--track-count", type=int, default=8, help="number of most-mobile users to track"
    )
    track.add_argument(
        "--min-friends", type=int, default=8, help="degree floor for auto-selected users"
    )
    track.add_argument("--k", type=int, default=4, help="minimum degree threshold")
    track.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="appfast", help="SAC algorithm"
    )
    track.add_argument("--epsilon-f", type=float, default=0.5, help="AppFast slack")
    track.add_argument("--epsilon-a", type=float, default=0.5, help="AppAcc / Exact+ accuracy")
    track.add_argument(
        "--no-incremental",
        action="store_true",
        help="rebuild all per-graph state at every tracked check-in instead of "
        "repairing one incremental engine in place",
    )
    track.add_argument(
        "--generate-users",
        type=int,
        default=500,
        help="users emitting synthetic check-ins when no --checkins file is given",
    )
    track.add_argument(
        "--checkins-per-user", type=int, default=8, help="synthetic check-ins per user"
    )
    track.add_argument(
        "--duration-days", type=float, default=40.0, help="synthetic stream duration"
    )
    track.add_argument("--seed", type=int, default=13, help="synthetic stream seed")
    _add_resident_budget_argument(track)

    stats = subparsers.add_parser("stats", help="print summary statistics of a graph file")
    stats.add_argument("graph", help="graph .npz file")

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "powerlaw":
        graph = powerlaw_spatial_graph(
            args.vertices, average_degree=args.average_degree, seed=args.seed
        )
    else:
        graph = brightkite_like(
            args.vertices, average_degree=args.average_degree, seed=args.seed
        )
    save_graph_npz(graph, args.out)
    summary = summarize(graph)
    print(
        f"wrote {args.out}: {summary.num_vertices} vertices, "
        f"{summary.num_edges} edges, avg degree {summary.average_degree:.2f}"
    )
    return 0


def _add_resident_budget_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--max-resident-mb`` residency-budget flag."""
    parser.add_argument(
        "--max-resident-mb",
        type=float,
        default=None,
        help="byte budget (in MiB) for resident artifact bundles: with "
        "--store, bundles materialise lazily from the mmap'd snapshot and "
        "an LRU evicts cold ones back to it; without a budget every "
        "touched bundle stays resident",
    )


def _resident_budget_bytes(args: argparse.Namespace) -> "int | None":
    """``--max-resident-mb`` converted to bytes (``None`` when unset)."""
    budget_mb = getattr(args, "max_resident_mb", None)
    if budget_mb is None:
        return None
    if budget_mb <= 0:
        raise InvalidParameterError(
            f"--max-resident-mb must be positive, got {budget_mb!r}"
        )
    return int(budget_mb * 1024 * 1024)


def _load_engine(args: argparse.Namespace, engine_cls):
    """Build the engine of a graph-or-store subcommand.

    ``--store`` warm-starts ``engine_cls`` memory-mapped from a snapshot;
    otherwise the positional graph file is loaded and a cold engine built.
    Exactly one of the two sources must be given.  ``--max-resident-mb``
    (when the subcommand has it) bounds the engine's resident bundle set.
    """
    budget = _resident_budget_bytes(args)
    if args.store is not None:
        if args.graph is not None:
            raise InvalidParameterError(
                "pass either a graph file or --store, not both"
            )
        return engine_cls.from_store(args.store, max_resident_bytes=budget)
    if args.graph is None:
        raise InvalidParameterError(
            "pass a graph .npz file or --store SNAPSHOT_DIR"
        )
    return engine_cls(load_graph_npz(args.graph), max_resident_bytes=budget)


def _command_snapshot(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore

    graph = load_graph_npz(args.graph)
    try:
        ks = sorted({int(part) for part in args.ks.split(",") if part.strip()})
    except ValueError:
        raise InvalidParameterError(
            f"--ks must be comma-separated integers, got {args.ks!r}"
        ) from None
    if not ks:
        raise InvalidParameterError("--ks named no degree thresholds")
    engine = QueryEngine(graph)
    for k in ks:
        count = engine.prepare(k)
        for component in range(count):
            engine.component_artifacts(k, component)
    store = ArtifactStore.save(args.out, engine)
    info = store.describe()
    print(
        f"wrote {info['path']}: {info['vertices']} vertices, "
        f"{info['edges']} edges, k={','.join(str(k) for k in ks)}, "
        f"{info['bundles']} bundles, {info['bytes'] / 1e6:.2f} MB"
    )
    return 0


def _algorithm_params(args: argparse.Namespace) -> dict:
    if args.algorithm == "appfast":
        return {"epsilon_f": args.epsilon_f}
    if args.algorithm in ("appacc", "exact+"):
        return {"epsilon_a": args.epsilon_a}
    return {}


def _command_query(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    searcher = SACSearcher(
        graph,
        default_algorithm=args.algorithm,
        share_preprocessing=not args.no_engine,
    )
    params = _algorithm_params(args)
    result = searcher.search(args.vertex, args.k, algorithm=args.algorithm, **params)
    if result is None:
        print(f"no community with minimum degree {args.k} contains vertex {args.vertex}")
        return 1
    members = ", ".join(str(label) for label in sorted(searcher.member_labels(result)))
    print(f"algorithm : {result.algorithm}")
    print(f"members   : {members}")
    print(f"size      : {result.size}")
    print(f"radius    : {result.radius:.6f}")
    print(f"center    : ({result.circle.center.x:.6f}, {result.circle.center.y:.6f})")
    return 0


def _batch_queries(args: argparse.Namespace, graph) -> list:
    """Resolve the query vertices of a batch-style subcommand.

    Explicit ``--vertices`` labels win; otherwise ``--count`` eligible
    vertices are sampled with ``--seed``.  Shared by ``batch`` and
    ``serve-batch``.
    """
    if args.vertices:
        labels = dict.fromkeys(_parse_label(part) for part in args.vertices.split(","))
        return [graph.index_of(label) for label in labels]
    from repro.experiments.queries import select_query_vertices

    queries = select_query_vertices(
        graph, count=args.count, min_core=args.k, seed=args.seed
    )
    if not queries:
        raise InvalidParameterError(
            f"graph has no vertices with core number >= {args.k}"
        )
    return queries


def _command_batch(args: argparse.Namespace) -> int:
    engine = _load_engine(args, QueryEngine)
    graph = engine.graph
    processor = BatchSACProcessor(
        graph,
        args.k,
        algorithm=args.algorithm,
        algorithm_params=_algorithm_params(args),
        engine=engine,
        use_plan=not args.no_plan,
    )
    queries = _batch_queries(args, graph)
    batch = processor.run(queries)
    print(f"algorithm      : {args.algorithm} (k={args.k})")
    print(f"queries        : {len(queries)} ({batch.answered} answered, {len(batch.failed)} without community)")
    print(f"total time     : {batch.elapsed_seconds:.4f}s")
    print(f"shared prep    : {batch.shared_preprocessing_seconds:.4f}s")
    if batch.answered:
        per_query = (
            batch.elapsed_seconds - batch.shared_preprocessing_seconds
        ) / batch.answered
        print(f"per query      : {per_query * 1000.0:.3f}ms")
    if batch.elapsed_seconds > 0:
        print(f"throughput     : {batch.answered / batch.elapsed_seconds:.1f} queries/s")
    for query in sorted(batch.results):
        result = batch.results[query]
        print(
            f"  vertex {graph.label_of(query)!s:>8}: {result.size} members, "
            f"radius {result.radius:.6f}"
        )
    return 0 if batch.answered else 1


def _command_serve_batch(args: argparse.Namespace) -> int:
    import time

    from repro.service import SACService

    if args.rounds < 1:
        raise InvalidParameterError(f"--rounds must be at least 1, got {args.rounds}")
    if args.deadline_ms is not None and not args.deadline_ms > 0:
        raise InvalidParameterError(
            f"--deadline-ms must be positive, got {args.deadline_ms}"
        )
    engine = _load_engine(args, QueryEngine)
    graph = engine.graph
    service = SACService(
        engine=engine,
        workers=args.workers,
        use_cache=not args.no_cache,
        use_shared_memory=not args.no_shared_memory,
        use_plan=not args.no_plan,
    )
    queries = _batch_queries(args, graph)
    params = _algorithm_params(args)

    mode = f"{args.workers} workers" if args.workers and args.workers >= 2 else "serial"
    cache_mode = "no cache" if args.no_cache else "answer cache on"
    role = "quality ceiling" if args.deadline_ms is not None else "algorithm"
    print(f"algorithm      : {args.algorithm} ({role}; k={args.k}, {mode}, {cache_mode})")
    if args.deadline_ms is not None:
        print(f"deadline       : {args.deadline_ms:g} ms per round (SLO ladder on)")
    print(f"queries        : {len(queries)} per round, {args.rounds} round(s)")
    answered = 0
    try:
        for round_index in range(args.rounds):
            start = time.perf_counter()
            batch = service.submit_batch(
                queries,
                args.k,
                algorithm=args.algorithm,
                deadline_ms=args.deadline_ms,
                **params,
            )
            elapsed = time.perf_counter() - start
            answered = batch.answered
            rate = batch.answered / elapsed if elapsed > 0 else float("inf")
            print(
                f"  round {round_index + 1}: {batch.answered} answered, "
                f"{len(batch.failed)} without community, {len(batch.errors)} errors, "
                f"{batch.cache_hits} cache hits, {elapsed:.4f}s ({rate:.1f} q/s)"
            )
            if args.deadline_ms is not None:
                rungs: dict = {}
                for rung in batch.algorithm_used.values():
                    rungs[rung] = rungs.get(rung, 0) + 1
                missed = sum(1 for late in batch.deadline_missed.values() if late)
                print(
                    f"    slo: rungs {rungs}, {missed} answers past the deadline"
                )
            for query, message in sorted(batch.errors.items()):
                print(f"    error vertex {query}: {message}", file=sys.stderr)
    finally:
        service.close()
    stats = service.stats()
    print(
        f"executor       : {stats.executor.shards_executed} shards, "
        f"{stats.executor.batches_parallel} parallel / "
        f"{stats.executor.batches_serial} serial batches, "
        f"{stats.executor.serial_fallbacks} fallbacks"
    )
    print(
        f"dispatch       : {stats.executor.segments_created} segments created "
        f"({stats.executor.bytes_shared} B shared once), "
        f"{stats.executor.segments_reused} reuses, "
        f"{stats.executor.bytes_dispatched} B task messages, "
        f"{stats.executor.bytes_pickled} B pickled payloads"
    )
    if stats.cache is not None:
        print(
            f"cache          : {stats.cache.hits} hits, {stats.cache.misses} misses, "
            f"{stats.cache.invalidations} invalidations, {stats.cache.evictions} evictions"
        )
    print(
        f"engine         : {stats.engine.components_materialised} bundles built, "
        f"{stats.engine.core_decompositions} core decomposition(s)"
    )
    residency = engine.residency_info()
    budget = residency["max_resident_bytes"]
    budget_text = f"{budget / (1024 * 1024):g} MiB budget" if budget else "no budget"
    print(
        f"residency      : {residency['resident_bundles']} resident "
        f"({residency['resident_bytes'] / (1024 * 1024):.1f} MiB, {budget_text}), "
        f"{stats.engine.bundles_materialised} store-materialised, "
        f"{stats.engine.bundles_evicted} evicted, "
        f"{residency['pinned_dirty']} pinned dirty"
    )
    if not args.no_plan:
        print(
            f"plan           : {stats.engine.batches_planned} batches planned, "
            f"{stats.engine.plan_groups} groups, "
            f"{stats.engine.queries_deduped} deduped, "
            f"{stats.engine.queries_factorised} factorised"
        )
    return 0 if answered else 1


def _serve_coordinator(args: argparse.Namespace) -> int:
    """``serve --role coordinator``: run the replication tier's router."""
    import asyncio

    from repro.replication import Coordinator, CoordinatorConfig

    if not args.writer_addr:
        raise InvalidParameterError(
            "--role coordinator requires --writer-addr HOST:PORT"
        )
    replicas = tuple(part.strip() for part in args.replicas.split(",") if part.strip())
    if args.max_staleness_lsn < 0:
        raise InvalidParameterError(
            f"--max-staleness-lsn must be non-negative, got {args.max_staleness_lsn}"
        )
    config = CoordinatorConfig(
        host=args.host,
        port=args.port,
        writer=args.writer_addr,
        replicas=replicas,
        max_staleness_lsn=args.max_staleness_lsn,
        health_interval_ms=args.health_interval_ms,
        max_body_bytes=args.max_body_bytes,
    )

    async def _run() -> None:
        coordinator = Coordinator(config)
        await coordinator.start()
        print(
            f"coordinating on {coordinator.url}: writer {config.writer}, "
            f"{len(replicas)} replica(s), max staleness {config.max_staleness_lsn} "
            f"LSN(s)",
            flush=True,
        )
        await coordinator.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal path exercised in CI
        pass
    print("server stopped", flush=True)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import SACServer, ServerConfig
    from repro.service import SACService

    if args.role == "coordinator":
        return _serve_coordinator(args)
    if args.role in ("writer", "replica") and not args.wal_dir:
        raise InvalidParameterError(f"--role {args.role} requires --wal-dir")
    if args.role == "replica" and args.static:
        raise InvalidParameterError(
            "--role replica needs an incremental engine to replay the WAL; "
            "drop --static"
        )

    engine_cls = QueryEngine if args.static else IncrementalEngine
    engine = _load_engine(args, engine_cls)
    service = SACService(
        engine=engine,
        workers=args.workers,
        use_cache=not args.no_cache,
        use_shared_memory=not args.no_shared_memory,
        use_plan=not args.no_plan,
    )
    if args.store is not None:
        service.store_path = str(args.store)
    try:
        warm_ks = sorted({int(part) for part in args.warm_ks.split(",") if part.strip()})
    except ValueError:
        raise InvalidParameterError(
            f"--warm-ks must be comma-separated integers, got {args.warm_ks!r}"
        ) from None
    # A snapshot records the last WAL LSN folded into it; starting the log
    # (writer) or the replay cursor (replica) just past it is what makes
    # cold-start O(snapshot) instead of O(history).
    snapshot_lsn = 0
    if args.role in ("writer", "replica") and args.store is not None:
        from repro.store import ArtifactStore

        snapshot_lsn = ArtifactStore.open(args.store).lsn
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch,
        max_linger_ms=args.linger_ms,
        max_body_bytes=args.max_body_bytes,
        max_batch_queries=args.max_batch_queries,
        warm_ks=warm_ks,
        snapshot_path=args.snapshot_to,
        slo_enabled=args.slo,
        default_deadline_ms=args.default_deadline_ms,
        max_queue_depth=args.max_queue_depth,
        retry_after_seconds=args.retry_after_seconds,
        wal_dir=args.wal_dir if args.role in ("writer", "replica") else None,
        wal_fsync=args.wal_fsync,
        snapshot_lsn=snapshot_lsn,
        max_resident_bytes=_resident_budget_bytes(args),
        poll_timeout_ms=args.poll_timeout_ms,
        subscription_backlog=args.subscription_backlog,
        subscription_idle_seconds=(
            args.subscription_idle_seconds
            if args.subscription_idle_seconds > 0
            else None
        ),
    )

    async def _run() -> None:
        if args.role == "replica":
            from repro.replication import ReplicaServer

            server = ReplicaServer(
                service,
                config,
                writer_url=args.writer_url,
                poll_interval_ms=args.poll_interval_ms,
            )
        else:
            server = SACServer(service, config)
        await server.start()
        mode = f"{args.workers} workers" if args.workers >= 2 else "serial execution"
        role = f", role {server.role}" if server.role != "single" else ""
        print(
            f"serving {engine.graph.num_vertices} vertices on {server.url} "
            f"({mode}, micro-batch <= {config.max_batch_size} / "
            f"{config.max_linger_ms:g} ms linger{role})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal path exercised in CI
        pass
    print("server stopped", flush=True)
    return 0


def _command_track(args: argparse.Namespace) -> int:
    import time

    from repro.datasets.geosocial import CheckinGenerator, TravelProfile
    from repro.dynamic.evaluation import select_mobile_queries
    from repro.dynamic.stream import LocationStream
    from repro.dynamic.tracker import SACTracker
    from repro.graph.io import Checkin, read_checkins

    engine = _load_engine(args, IncrementalEngine) if args.store else None
    if engine is not None:
        graph = engine.graph
    else:
        graph = load_graph_npz(args.graph) if args.graph else None
        if graph is None:
            raise InvalidParameterError(
                "pass a graph .npz file or --store SNAPSHOT_DIR"
            )
    generator = CheckinGenerator(graph, TravelProfile(), seed=args.seed)
    if args.checkins:
        # Check-in files identify users by their graph label (like every
        # other CLI surface); the stream machinery addresses vertices by
        # internal index, so translate here.  Unknown labels exit 2.
        checkins = [
            Checkin(
                user=graph.index_of(record.user),
                timestamp=record.timestamp,
                x=record.x,
                y=record.y,
            )
            for record in read_checkins(args.checkins)
        ]
    else:
        emitters = list(range(min(graph.num_vertices, args.generate_users)))
        checkins = generator.generate(
            emitters,
            checkins_per_user=args.checkins_per_user,
            duration_days=args.duration_days,
        )
    if not checkins:
        raise InvalidParameterError("the check-in stream is empty")

    if args.users:
        labels = dict.fromkeys(_parse_label(part) for part in args.users.split(","))
        tracked = [graph.index_of(label) for label in labels]
    else:
        travel = generator.total_travel_distance(checkins)
        tracked = select_mobile_queries(
            graph, checkins, travel, count=args.track_count, min_friends=args.min_friends
        )
        if not tracked:
            raise InvalidParameterError(
                f"no check-in users with at least {args.min_friends} friends; "
                "lower --min-friends or pass --users"
            )

    tracker = SACTracker(
        LocationStream(graph, checkins),
        args.k,
        algorithm=args.algorithm,
        algorithm_params=_algorithm_params(args),
        incremental=not args.no_incremental,
        engine=engine if not args.no_incremental else None,
    )
    start = time.perf_counter()
    timelines = tracker.track(tracked)
    elapsed = time.perf_counter() - start

    total_queries = sum(len(snapshots) for snapshots in timelines.values())
    mode = "rebuild-per-checkin" if args.no_incremental else "incremental"
    print(f"algorithm      : {args.algorithm} (k={args.k}, {mode})")
    print(f"check-ins      : {len(checkins)} replayed, {total_queries} tracked queries")
    print(f"total time     : {elapsed:.4f}s")
    if elapsed > 0:
        print(f"replay rate    : {len(checkins) / elapsed:.1f} check-ins/s")
    if tracker.last_engine is not None:
        stats = tracker.last_engine.stats
        print(
            f"engine         : {stats.bundles_patched} bundle patches, "
            f"{stats.components_materialised} bundles built, "
            f"{stats.core_decompositions} core decomposition(s)"
        )
    for user in sorted(timelines):
        snapshots = timelines[user]
        found = [snap for snap in snapshots if snap.found]
        sizes = ", ".join(str(len(snap.members)) for snap in snapshots) or "-"
        print(
            f"  user {graph.label_of(user)!s:>8}: {len(snapshots)} check-ins, "
            f"{len(found)} with a community (sizes: {sizes})"
        )
    return 0 if total_queries else 1


def _parse_label(text: str):
    """Interpret a CLI vertex label: integer when possible, else the raw string."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return text


def _command_stats(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    summary = summarize(graph)
    for key, value in summary.as_row().items():
        print(f"{key:12s}: {value}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "query": _command_query,
        "batch": _command_batch,
        "snapshot": _command_snapshot,
        "serve-batch": _command_serve_batch,
        "serve": _command_serve,
        "track": _command_track,
        "stats": _command_stats,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
