"""Command-line interface for the SAC search library.

Three subcommands cover the common workflows of a downstream user:

``generate``
    Create a synthetic spatial graph (power-law or geo-social) and save it as
    an ``.npz`` file.

``query``
    Load a graph (``.npz``) and run one SAC query with any of the algorithms,
    printing the member list and the covering circle.  Served through the
    shared-preprocessing engine unless ``--no-engine`` is given.

``batch``
    Run many SAC queries through the :class:`repro.engine.QueryEngine`-backed
    batch processor, sharing the per-graph preprocessing, and print a
    throughput summary.

``stats``
    Print the Table-4 style summary of a graph file.

Examples
--------
::

    python -m repro.cli generate --kind geosocial --vertices 5000 --out graph.npz
    python -m repro.cli query graph.npz --vertex 42 --k 4 --algorithm exact+
    python -m repro.cli batch graph.npz --count 64 --k 4 --algorithm appfast
    python -m repro.cli stats graph.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.searcher import ALGORITHMS, SACSearcher
from repro.datasets.geosocial import brightkite_like
from repro.datasets.synthetic import powerlaw_spatial_graph
from repro.exceptions import InvalidParameterError, ReproError
from repro.extensions.batch import BatchSACProcessor
from repro.graph.io import load_graph_npz, save_graph_npz
from repro.graph.stats import summarize


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial-aware community (SAC) search over spatial graphs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic spatial graph")
    generate.add_argument("--kind", choices=("powerlaw", "geosocial"), default="geosocial")
    generate.add_argument("--vertices", type=int, default=5000)
    generate.add_argument("--average-degree", type=float, default=8.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .npz path")

    query = subparsers.add_parser("query", help="run one SAC query against a graph file")
    query.add_argument("graph", help="graph .npz file produced by `generate`")
    query.add_argument("--vertex", type=int, required=True, help="query vertex label")
    query.add_argument("--k", type=int, default=4, help="minimum degree threshold")
    query.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="appfast", help="SAC algorithm"
    )
    query.add_argument("--epsilon-f", type=float, default=0.5, help="AppFast slack")
    query.add_argument("--epsilon-a", type=float, default=0.5, help="AppAcc / Exact+ accuracy")
    query.add_argument(
        "--no-engine",
        action="store_true",
        help="rebuild all per-graph state for the query instead of using the shared engine",
    )

    batch = subparsers.add_parser(
        "batch", help="run many SAC queries with shared preprocessing"
    )
    batch.add_argument("graph", help="graph .npz file produced by `generate`")
    batch.add_argument(
        "--vertices",
        help="comma-separated query vertex labels (default: sample --count eligible vertices)",
    )
    batch.add_argument(
        "--count", type=int, default=32, help="number of random eligible query vertices"
    )
    batch.add_argument("--seed", type=int, default=0, help="sampling seed for --count")
    batch.add_argument("--k", type=int, default=4, help="minimum degree threshold")
    batch.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="appfast", help="SAC algorithm"
    )
    batch.add_argument("--epsilon-f", type=float, default=0.5, help="AppFast slack")
    batch.add_argument("--epsilon-a", type=float, default=0.5, help="AppAcc / Exact+ accuracy")

    stats = subparsers.add_parser("stats", help="print summary statistics of a graph file")
    stats.add_argument("graph", help="graph .npz file")

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "powerlaw":
        graph = powerlaw_spatial_graph(
            args.vertices, average_degree=args.average_degree, seed=args.seed
        )
    else:
        graph = brightkite_like(
            args.vertices, average_degree=args.average_degree, seed=args.seed
        )
    save_graph_npz(graph, args.out)
    summary = summarize(graph)
    print(
        f"wrote {args.out}: {summary.num_vertices} vertices, "
        f"{summary.num_edges} edges, avg degree {summary.average_degree:.2f}"
    )
    return 0


def _algorithm_params(args: argparse.Namespace) -> dict:
    if args.algorithm == "appfast":
        return {"epsilon_f": args.epsilon_f}
    if args.algorithm in ("appacc", "exact+"):
        return {"epsilon_a": args.epsilon_a}
    return {}


def _command_query(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    searcher = SACSearcher(
        graph,
        default_algorithm=args.algorithm,
        share_preprocessing=not args.no_engine,
    )
    params = _algorithm_params(args)
    result = searcher.search(args.vertex, args.k, algorithm=args.algorithm, **params)
    if result is None:
        print(f"no community with minimum degree {args.k} contains vertex {args.vertex}")
        return 1
    members = ", ".join(str(label) for label in sorted(searcher.member_labels(result)))
    print(f"algorithm : {result.algorithm}")
    print(f"members   : {members}")
    print(f"size      : {result.size}")
    print(f"radius    : {result.radius:.6f}")
    print(f"center    : ({result.circle.center.x:.6f}, {result.circle.center.y:.6f})")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    processor = BatchSACProcessor(
        graph, args.k, algorithm=args.algorithm, algorithm_params=_algorithm_params(args)
    )
    if args.vertices:
        labels = dict.fromkeys(_parse_label(part) for part in args.vertices.split(","))
        queries = [graph.index_of(label) for label in labels]
    else:
        from repro.experiments.queries import select_query_vertices

        queries = select_query_vertices(
            graph, count=args.count, min_core=args.k, seed=args.seed
        )
        if not queries:
            raise InvalidParameterError(
                f"graph has no vertices with core number >= {args.k}"
            )
    batch = processor.run(queries)
    print(f"algorithm      : {args.algorithm} (k={args.k})")
    print(f"queries        : {len(queries)} ({batch.answered} answered, {len(batch.failed)} without community)")
    print(f"total time     : {batch.elapsed_seconds:.4f}s")
    print(f"shared prep    : {batch.shared_preprocessing_seconds:.4f}s")
    if batch.answered:
        per_query = (
            batch.elapsed_seconds - batch.shared_preprocessing_seconds
        ) / batch.answered
        print(f"per query      : {per_query * 1000.0:.3f}ms")
    if batch.elapsed_seconds > 0:
        print(f"throughput     : {batch.answered / batch.elapsed_seconds:.1f} queries/s")
    for query in sorted(batch.results):
        result = batch.results[query]
        print(
            f"  vertex {graph.label_of(query)!s:>8}: {result.size} members, "
            f"radius {result.radius:.6f}"
        )
    return 0 if batch.answered else 1


def _parse_label(text: str):
    """Interpret a CLI vertex label: integer when possible, else the raw string."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return text


def _command_stats(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    summary = summarize(graph)
    for key, value in summary.as_row().items():
        print(f"{key:12s}: {value}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "query": _command_query,
        "batch": _command_batch,
        "stats": _command_stats,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
