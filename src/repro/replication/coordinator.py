"""The replication tier's front door: route reads, serialise writes.

A :class:`Coordinator` is a thin asyncio proxy over one writer and N
replicas (:mod:`repro.replication`).  It holds no graph, no engine, and no
cache — only routing state: which backends are alive (``/healthz``
probes), each replica's ``applied_lsn``, and the writer's last durable LSN
(tracked from mutation responses, refreshed by the prober).  Three rules
decide every request:

* **mutations** (``/checkin``, ``/edge``, ``/compact``) always go to the
  writer — there is exactly one serialisation point in the tier;
* **reads** (``/query``, ``/batch``) go round-robin over healthy replicas
  whose replay lag ``writer_lsn - applied_lsn`` is within
  ``max_staleness_lsn``; a replica that looks too stale gets one on-demand
  health refresh before being skipped, and when every replica lags the
  read lands on the writer (bounded staleness never waits, it redirects);
* **failover**: a backend that refuses a connection mid-request is marked
  dead and the read retries on the next candidate; the health prober
  readmits it when ``/healthz`` answers again.

Every proxied response carries ``X-Served-By`` (the backend address) and,
for reads, ``X-Staleness-LSN`` (the routed replica's lag at decision time)
— the benchmark's measured-staleness evidence comes straight from these.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.server.http import (
    ConnectionClosed,
    HttpError,
    Request,
    encode_request,
    encode_response,
    error_payload,
    read_request,
    read_response,
    write_response,
)

#: Paths that mutate engine state — always routed to the writer.
WRITE_PATHS = frozenset({"/checkin", "/edge", "/compact"})

#: Paths served by replicas (or the writer as staleness fallback).
READ_PATHS = frozenset({"/query", "/batch"})


@dataclass
class CoordinatorConfig:
    """Tunables of one :class:`Coordinator`.

    Attributes
    ----------
    host / port:
        Listen address (``port=0`` binds an ephemeral port, like the
        daemon).
    writer:
        The writer daemon's address as ``host:port``.
    replicas:
        Replica daemon addresses as ``host:port`` each; order is the
        round-robin order.
    max_staleness_lsn:
        Bounded-staleness knob: a replica may serve a read only while its
        replay lag (in WAL records) is at most this; ``0`` demands replicas
        be fully caught up with every acknowledged mutation.
    health_interval_ms:
        Background ``/healthz`` probe period — the failover detection (and
        readmission) latency.
    max_body_bytes:
        Request/response bodies beyond this are refused, as in the daemon.
    connect_timeout_seconds / request_timeout_seconds:
        Backend dial and full-request bounds; a backend that exceeds them
        counts as failed for that request.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    writer: str = "127.0.0.1:8081"
    replicas: Tuple[str, ...] = ()
    max_staleness_lsn: int = 0
    health_interval_ms: float = 200.0
    max_body_bytes: int = 1 << 20
    connect_timeout_seconds: float = 2.0
    request_timeout_seconds: float = 30.0


@dataclass
class BackendState:
    """The coordinator's live view of one backend daemon."""

    address: str
    healthy: bool = True
    applied_lsn: int = 0
    reads_served: int = 0
    failures: int = 0

    def host_port(self) -> Tuple[str, int]:
        """Split ``host:port`` for dialing."""
        host, _, port = self.address.rpartition(":")
        return host, int(port)


@dataclass
class CoordinatorStats:
    """Routing counters surfaced by the coordinator's ``GET /stats``."""

    reads_proxied: int = 0
    reads_to_writer: int = 0
    reads_stale_skips: int = 0
    mutations_proxied: int = 0
    failovers: int = 0
    health_probes: int = 0
    max_staleness_observed: int = 0
    served_by: Dict[str, int] = field(default_factory=dict)


class _BackendError(Exception):
    """One backend failed to take (or finish) a proxied request."""


class Coordinator:
    """Route client traffic across the writer and its replicas."""

    def __init__(self, config: Optional[CoordinatorConfig] = None) -> None:
        self.config = config or CoordinatorConfig()
        self.writer = BackendState(address=self.config.writer)
        self.replicas: List[BackendState] = [
            BackendState(address=address) for address in self.config.replicas
        ]
        self.stats = CoordinatorStats()
        #: The writer's last durable LSN as this coordinator knows it —
        #: advanced by every acknowledged mutation and by health probes, so
        #: with all mutations flowing through here it is never behind the
        #: log (mutations are acknowledged only after the append).
        self.writer_lsn = 0
        self._rr_next = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._health_task: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None

    # -------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL of the listening coordinator."""
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listen socket and start the health prober."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._health_task = self._loop.create_task(self._health_loop())
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`stop`; installs SIGTERM/SIGINT handlers."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, lambda: loop.create_task(self.stop()))
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting, cancel the prober, close open connections."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    # -------------------------------------------------------------- backends
    async def _backend_roundtrip(
        self, backend: BackendState, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One full request/response against a backend, bounded in time."""
        host, port = backend.host_port()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port),
                self.config.connect_timeout_seconds,
            )
        except (OSError, asyncio.TimeoutError) as error:
            raise _BackendError(f"{backend.address}: connect failed: {error}") from None
        try:
            writer.write(
                encode_request(
                    method, path, body, host=backend.address, keep_alive=False
                )
            )
            await writer.drain()
            status, headers, payload = await asyncio.wait_for(
                read_response(reader, max_body_bytes=self.config.max_body_bytes),
                self.config.request_timeout_seconds,
            )
        except (
            OSError,
            asyncio.TimeoutError,
            ConnectionClosed,
            HttpError,
            ConnectionError,
        ) as error:
            raise _BackendError(f"{backend.address}: request failed: {error}") from None
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        return status, headers, payload

    async def _probe(self, backend: BackendState, *, is_writer: bool) -> bool:
        """Refresh one backend's health and LSN view from its ``/healthz``."""
        self.stats.health_probes += 1
        try:
            status, _, body = await self._backend_roundtrip(
                backend, "GET", "/healthz", b""
            )
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (_BackendError, ValueError):
            backend.healthy = False
            return False
        backend.healthy = status == 200
        if not backend.healthy:
            return False
        if is_writer:
            lsn = payload.get("lsn")
            if isinstance(lsn, int):
                self.writer_lsn = max(self.writer_lsn, lsn)
        else:
            applied = payload.get("applied_lsn")
            if isinstance(applied, int):
                backend.applied_lsn = max(backend.applied_lsn, applied)
        return True

    async def _health_loop(self) -> None:
        """Probe every backend on a fixed period; eject and readmit replicas."""
        interval = self.config.health_interval_ms / 1000.0
        while True:
            for replica in self.replicas:
                await self._probe(replica, is_writer=False)
            await self._probe(self.writer, is_writer=True)
            await asyncio.sleep(interval)

    def _staleness(self, replica: BackendState) -> int:
        """Current replay lag of ``replica`` behind the known writer LSN."""
        return max(0, self.writer_lsn - replica.applied_lsn)

    async def _pick_replica(self) -> Optional[Tuple[BackendState, int]]:
        """Next healthy, fresh-enough replica (round-robin), with its lag.

        A replica whose *cached* lag exceeds the bound gets one on-demand
        ``/healthz`` refresh before being skipped — the cached view ages a
        full health interval, which would otherwise bounce fresh replicas'
        reads to the writer after every mutation.
        """
        count = len(self.replicas)
        bound = self.config.max_staleness_lsn
        for step in range(count):
            replica = self.replicas[(self._rr_next + step) % count]
            if not replica.healthy:
                continue
            if self._staleness(replica) > bound:
                await self._probe(replica, is_writer=False)
            if replica.healthy and self._staleness(replica) <= bound:
                self._rr_next = (self._rr_next + step + 1) % count
                return replica, self._staleness(replica)
            self.stats.reads_stale_skips += 1
        return None

    # -------------------------------------------------------------- routing
    async def _route(
        self, request: Request
    ) -> Tuple[int, dict, Dict[str, str], Optional[bytes]]:
        """Decide and execute one request; returns (status, payload, headers, raw).

        ``raw`` is the proxied backend body (already JSON bytes) when the
        request was proxied — passed through untouched so proxying never
        re-interprets payloads; ``payload`` is used when the coordinator
        answers from its own state (``raw`` is ``None``).
        """
        if request.method == "GET" and request.path == "/healthz":
            return 200, self._healthz_payload(), {}, None
        if request.method == "GET" and request.path == "/stats":
            return 200, self._stats_payload(), {}, None
        if request.method == "POST" and request.path in WRITE_PATHS:
            return await self._route_mutation(request)
        if request.method == "POST" and request.path in READ_PATHS:
            return await self._route_read(request)
        status, payload = error_payload(
            404, f"coordinator does not route {request.method} {request.path}"
        )
        return status, payload, {}, None

    async def _route_mutation(
        self, request: Request
    ) -> Tuple[int, dict, Dict[str, str], Optional[bytes]]:
        """Proxy a mutation to the writer; track its acknowledged LSN."""
        try:
            status, _, body = await self._backend_roundtrip(
                self.writer, request.method, request.path, request.body
            )
        except _BackendError as error:
            self.writer.failures += 1
            self.writer.healthy = False
            status, payload = error_payload(502, f"writer unavailable: {error}")
            return status, payload, {}, None
        self.writer.healthy = True
        self.stats.mutations_proxied += 1
        if status == 200:
            with contextlib.suppress(ValueError, AttributeError):
                lsn = json.loads(body.decode("utf-8")).get("lsn")
                if isinstance(lsn, int):
                    self.writer_lsn = max(self.writer_lsn, lsn)
        headers = {"X-Served-By": self.writer.address}
        return status, {}, headers, body

    async def _route_read(
        self, request: Request
    ) -> Tuple[int, dict, Dict[str, str], Optional[bytes]]:
        """Serve a read from a fresh replica, failing over, else the writer."""
        attempts = len(self.replicas)
        for _ in range(attempts):
            picked = await self._pick_replica()
            if picked is None:
                break
            replica, staleness = picked
            try:
                status, _, body = await self._backend_roundtrip(
                    replica, request.method, request.path, request.body
                )
            except _BackendError:
                # Dead mid-request: eject and retry on the next candidate.
                replica.healthy = False
                replica.failures += 1
                self.stats.failovers += 1
                continue
            replica.reads_served += 1
            self.stats.reads_proxied += 1
            self.stats.served_by[replica.address] = (
                self.stats.served_by.get(replica.address, 0) + 1
            )
            self.stats.max_staleness_observed = max(
                self.stats.max_staleness_observed, staleness
            )
            headers = {
                "X-Served-By": replica.address,
                "X-Staleness-LSN": str(staleness),
            }
            return status, {}, headers, body

        # No replica is fresh and alive — bounded staleness redirects the
        # read to the writer rather than waiting out the lag.
        try:
            status, _, body = await self._backend_roundtrip(
                self.writer, request.method, request.path, request.body
            )
        except _BackendError as error:
            self.writer.failures += 1
            self.writer.healthy = False
            status, payload = error_payload(
                502, f"no fresh replica and the writer is unavailable: {error}"
            )
            return status, payload, {}, None
        self.stats.reads_proxied += 1
        self.stats.reads_to_writer += 1
        self.stats.served_by[self.writer.address] = (
            self.stats.served_by.get(self.writer.address, 0) + 1
        )
        headers = {"X-Served-By": self.writer.address, "X-Staleness-LSN": "0"}
        return status, {}, headers, body

    # ------------------------------------------------------------ own payloads
    def _healthz_payload(self) -> dict:
        """The coordinator's own liveness + tier view."""
        return {
            "status": "draining" if self._draining else "ok",
            "role": "coordinator",
            "writer": {
                "address": self.writer.address,
                "healthy": self.writer.healthy,
                "lsn": self.writer_lsn,
            },
            "replicas": [
                {
                    "address": replica.address,
                    "healthy": replica.healthy,
                    "applied_lsn": replica.applied_lsn,
                    "staleness_lsn": self._staleness(replica),
                }
                for replica in self.replicas
            ],
            "max_staleness_lsn": self.config.max_staleness_lsn,
        }

    def _stats_payload(self) -> dict:
        """Routing counters plus the tier view."""
        return {
            "role": "coordinator",
            "routing": {
                "reads_proxied": self.stats.reads_proxied,
                "reads_to_writer": self.stats.reads_to_writer,
                "reads_stale_skips": self.stats.reads_stale_skips,
                "mutations_proxied": self.stats.mutations_proxied,
                "failovers": self.stats.failovers,
                "health_probes": self.stats.health_probes,
                "max_staleness_observed": self.stats.max_staleness_observed,
                "served_by": dict(self.stats.served_by),
            },
            "tier": self._healthz_payload(),
        }

    # ------------------------------------------------------------ connections
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, TimeoutError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one keep-alive client connection until EOF or drain."""
        while True:
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
            except ConnectionClosed:
                return
            except HttpError as error:
                with contextlib.suppress(ConnectionError):
                    await write_response(
                        writer,
                        *error_payload(error.status, error.message),
                        keep_alive=False,
                    )
                return
            try:
                status, payload, headers, raw = await self._route(request)
            except Exception as error:  # noqa: BLE001 - the proxy must survive
                print(f"coordinator: routing error: {error!r}", file=sys.stderr)
                status, payload = error_payload(500, "internal coordinator error")
                headers, raw = {}, None
            keep_alive = request.keep_alive and not self._draining
            try:
                if raw is not None:
                    writer.write(_reframe(status, raw, headers, keep_alive=keep_alive))
                    await writer.drain()
                else:
                    await write_response(
                        writer,
                        status,
                        payload,
                        keep_alive=keep_alive,
                        extra_headers=headers or None,
                    )
            except ConnectionError:
                return
            if not keep_alive:
                return


def _reframe(
    status: int, body: bytes, headers: Dict[str, str], *, keep_alive: bool
) -> bytes:
    """Wrap a proxied backend body in a fresh response frame.

    The backend's JSON body is passed through byte-for-byte; only the
    framing (status line, lengths, connection policy) and the coordinator's
    routing headers are new.
    """
    from repro.server.http import REASONS

    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class CoordinatorHandle:
    """Thread-safe handle to a coordinator running in a background thread."""

    def __init__(
        self,
        coordinator: Coordinator,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.coordinator = coordinator
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        """Listen host of the running coordinator."""
        return self.coordinator.config.host

    @property
    def port(self) -> int:
        """Bound port of the running coordinator."""
        return self.coordinator.port

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the coordinator and join its thread."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.coordinator.stop(), self._loop
            ).result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "CoordinatorHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_coordinator_in_thread(
    config: Optional[CoordinatorConfig] = None,
) -> CoordinatorHandle:
    """Run a :class:`Coordinator` in a daemon thread; returns when listening.

    The in-process harness the replication tests and benchmark use —
    symmetric with :func:`repro.server.start_in_thread`.
    """
    config = config or CoordinatorConfig(port=0)
    started = threading.Event()
    box: dict = {}

    async def _run() -> None:
        coordinator = Coordinator(config)
        await coordinator.start()
        box["coordinator"] = coordinator
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await coordinator.wait_stopped()

    def _runner() -> None:
        try:
            asyncio.run(_run())
        except Exception as error:  # noqa: BLE001 - surfaced via started timeout
            box["error"] = error
            started.set()

    thread = threading.Thread(target=_runner, name="sac-coordinator", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if "error" in box:
        raise box["error"]
    if "coordinator" not in box:
        raise RuntimeError("coordinator failed to start within 30s")
    return CoordinatorHandle(box["coordinator"], box["loop"], thread)
