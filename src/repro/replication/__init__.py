"""The replicated serving tier: one writer, N WAL-replayed read replicas.

The single daemon of :mod:`repro.server` funnels every read and every
mutation through one process — the hard ceiling on serving heavy traffic.
This package scales reads out without giving up the daemon's bit-identity
contract, by separating three roles that share two artifacts (one
:class:`repro.store.ArtifactStore` snapshot, one
:class:`repro.store.WriteAheadLog`):

* **writer** — a :class:`repro.server.SACServer` with a WAL configured
  (``ServerConfig.wal_dir``): the only process that mutates.  Every applied
  ``checkin``/``edge`` is appended to the log in apply order with a
  monotonic LSN; ``POST /compact`` rolls the log into a fresh LSN-stamped
  snapshot so replica cold-start stays O(snapshot).
* **replica** — :class:`ReplicaServer`: warm-starts zero-copy from the same
  snapshot (the mmap'd pages are shared by the OS, so N replicas cost one
  snapshot of RAM), refuses mutations with ``403`` + the writer's address,
  and tails the WAL with a :class:`repro.store.WalCursor`, replaying each
  record through its own :class:`repro.engine.IncrementalEngine` behind the
  daemon's write barrier.  The engine's per-``(k, representative)`` version
  counters are the invalidation machinery, so a replayed replica is
  **bit-identical** to the writer at every LSN — same answers, same cache
  validity.  A replica that falls behind a compaction resyncs from the
  fresh snapshot and resumes tailing.
* **coordinator** — :class:`Coordinator`: a thin stdlib HTTP proxy that
  routes mutations to the writer and reads round-robin over replicas whose
  replay lag is within ``max_staleness_lsn`` of the writer's last durable
  LSN (lagging replicas are skipped — the read lands on the writer rather
  than waiting), probes ``/healthz`` to eject dead replicas and readmit
  recovered ones, and stamps every proxied response with ``X-Served-By``
  and ``X-Staleness-LSN``.

``repro-sac serve --role writer|replica|coordinator`` is the CLI front
end; see the Replication section of ``docs/serving.md`` for the operator
guide and ``benchmarks/bench_replication.py`` for the bit-identity and
staleness-bound measurements.
"""

from repro.replication.coordinator import (
    Coordinator,
    CoordinatorConfig,
    CoordinatorHandle,
    start_coordinator_in_thread,
)
from repro.replication.replica import ReplicaServer, ReplicaStats

__all__ = [
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorHandle",
    "ReplicaServer",
    "ReplicaStats",
    "start_coordinator_in_thread",
]
