"""Read replicas: tail the writer's WAL, replay, serve bit-identical reads.

A :class:`ReplicaServer` is a :class:`repro.server.SACServer` with the
mutation surface turned around: ``/checkin``, ``/edge``, and ``/compact``
answer ``403`` pointing at the writer, and a background follower task tails
the shared write-ahead log instead, applying each record through the
daemon's own write barrier.  Replay therefore interleaves with the
replica's read micro-batches exactly as first-hand mutations interleave on
the writer — pending reads are flushed before a record applies — so every
answer a replica produces equals the writer's answer at the replica's
``applied_lsn``.

Standing queries are served from replicas too: ``/subscribe`` is *not* on
the refused mutation list, so clients may register subscriptions against a
replica and receive deltas driven by WAL replay, each stamped with the
replica's ``applied_lsn`` at evaluation time.  A post-compaction resync
keeps subscriptions alive — the registry is re-pointed at the fresh service
and every subscription re-resolves its component on the next pass.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.server.daemon import SACServer, ServerConfig
from repro.server.http import Request
from repro.service import SACService
from repro.store import ArtifactStore
from repro.store.wal import WalCursor, WalGapError


@dataclass
class ReplicaStats:
    """Replay counters of one :class:`ReplicaServer`."""

    records_replayed: int = 0
    replay_batches: int = 0
    resyncs: int = 0
    mutations_refused: int = 0


class ReplicaServer(SACServer):
    """A read-only daemon kept current by WAL replay.

    Parameters
    ----------
    service:
        The serving facade, warm-started from the shared snapshot —
        normally ``SACService.open(store_path)``.  Its engine must be an
        :class:`~repro.engine.IncrementalEngine` (the ``open`` default) for
        replay to work.
    config:
        A :class:`~repro.server.ServerConfig` whose ``wal_dir`` names the
        writer's log directory and whose ``snapshot_lsn`` is the LSN the
        opened snapshot covers (``ArtifactStore.open(path).lsn``); replay
        starts at ``snapshot_lsn + 1``.
    writer_url:
        Advertised to clients refused with ``403`` on mutation endpoints.
    poll_interval_ms:
        How often the follower polls the log for news — the knob that
        bounds replay lag in *time* (the coordinator's ``max_staleness_lsn``
        bounds it in *records*).
    service_factory:
        Builds a fresh service during a post-compaction resync; defaults to
        ``SACService.open`` on the service's remembered ``store_path``.
    clock:
        Forwarded to :class:`~repro.server.SACServer`.
    """

    def __init__(
        self,
        service: SACService,
        config: Optional[ServerConfig] = None,
        *,
        writer_url: Optional[str] = None,
        poll_interval_ms: float = 25.0,
        service_factory: Optional[Callable[[], SACService]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(service, config, clock=clock)
        if self.config.wal_dir is None:
            raise InvalidParameterError(
                "a replica needs the writer's WAL directory (ServerConfig.wal_dir)"
            )
        self.writer_url = writer_url
        self.poll_interval_ms = float(poll_interval_ms)
        self.replica_stats = ReplicaStats()
        self._service_factory = service_factory
        self._cursor = WalCursor(
            self.config.wal_dir, start_lsn=self.config.snapshot_lsn + 1
        )
        self._applied = int(self.config.snapshot_lsn)
        self._follow_task: Optional[asyncio.Task] = None
        for route in (("POST", "/checkin"), ("POST", "/edge"), ("POST", "/compact")):
            self._routes[route] = self._handle_not_writer

    # --------------------------------------------------------------- identity
    @property
    def role(self) -> str:
        """Always ``replica`` — reads only, state arrives by replay."""
        return "replica"

    @property
    def durable_lsn(self) -> Optional[int]:
        """``None``: replicas never own the log, they only apply it."""
        return None

    @property
    def applied_lsn(self) -> Optional[int]:
        """Last WAL LSN replayed into this replica's engine."""
        return self._applied

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the daemon, catch up on the retained log, start following."""
        await super().start()
        # One synchronous catch-up pass so a freshly started replica joins
        # the rotation already current, then tail in the background.
        with contextlib.suppress(WalGapError):
            await self._apply_available()
        self._follow_task = self._loop.create_task(self._follow_loop())

    async def stop(self) -> None:
        """Stop following, then drain and stop the daemon."""
        if self._follow_task is not None:
            self._follow_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._follow_task
            self._follow_task = None
        await super().stop()

    # -------------------------------------------------------------- following
    async def _follow_loop(self) -> None:
        """Poll the WAL forever, replaying news and resyncing across gaps."""
        interval = self.poll_interval_ms / 1000.0
        while True:
            try:
                await self._apply_available()
            except asyncio.CancelledError:
                raise
            except WalGapError as gap:
                try:
                    await self._resync(gap)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - keep following
                    print(f"replica: resync failed: {error!r}", file=sys.stderr)
            except Exception as error:  # noqa: BLE001 - keep following
                print(f"replica: replay failed: {error!r}", file=sys.stderr)
            await asyncio.sleep(interval)

    async def _apply_available(self) -> int:
        """Replay every complete record currently in the log; returns count.

        Runs as one job through the daemon's write barrier
        (:meth:`SACServer._run_mutation`): pending read micro-batches flush
        first, then the records apply on the engine thread in LSN order —
        the same interleaving discipline the writer gives first-hand
        mutations, which is what keeps replica answers bit-identical to the
        writer's at ``applied_lsn``.
        """

        def run() -> int:
            total = 0
            while True:
                records = self._cursor.poll(max_records=256)
                if not records:
                    return total
                for record in records:
                    self.service.apply_record(record)
                    self._applied = int(record["lsn"])
                    total += 1

        applied = await self._run_mutation(run)
        if applied:
            self.replica_stats.records_replayed += applied
            self.replica_stats.replay_batches += 1
        return applied

    async def _resync(self, gap: WalGapError) -> None:
        """Rebuild from the compacted snapshot and resume tailing after it.

        The records between ``applied_lsn`` and the log's new start were
        folded into a fresh snapshot by the writer's compaction; reopening
        the store (an mmap warm start — O(snapshot), not O(history)) lands
        the replica at the snapshot's LSN, and the cursor resumes there.
        The service swap runs behind the write barrier so no in-flight
        micro-batch straddles two engines.
        """
        factory = self._service_factory
        store_path = self.service.store_path
        if factory is None:
            if store_path is None:
                raise InvalidParameterError(
                    "replica cannot resync: the service was not opened from a "
                    "store and no service_factory was provided"
                )
            # Carry the residency budget across the resync: the fresh
            # engine replays under the same memory bound the replica was
            # started with.
            budget = self.service.engine.max_resident_bytes
            factory = lambda: SACService.open(  # noqa: E731
                store_path, max_resident_bytes=budget
            )

        def run() -> Tuple[int, int]:
            fresh = factory()
            if fresh.store_path is not None:
                snapshot_lsn = ArtifactStore.open(fresh.store_path).lsn
            else:
                snapshot_lsn = gap.available_lsn - 1
            if snapshot_lsn + 1 < gap.available_lsn:
                raise InvalidParameterError(
                    f"snapshot at lsn {snapshot_lsn} cannot bridge the WAL gap "
                    f"(log starts at {gap.available_lsn}); compact the writer "
                    "before truncating further"
                )
            stale = self.service
            self.service = fresh
            # Standing queries survive the swap: the registry re-resolves
            # every subscription against the fresh engine on the next
            # evaluation pass (the one this same barrier job triggers) and
            # delivers a delta only where the answer actually moved.
            self.subscriptions.rebind(fresh)
            self._cursor = WalCursor(
                self.config.wal_dir, start_lsn=snapshot_lsn + 1
            )
            self._applied = snapshot_lsn
            stale.close()
            return gap.needed_lsn, snapshot_lsn

        needed, landed = await self._run_mutation(run)
        self.replica_stats.resyncs += 1
        print(
            f"replica: resynced from snapshot (gap at lsn {needed}, "
            f"now at lsn {landed})",
            file=sys.stderr,
        )

    # --------------------------------------------------------------- handlers
    async def _handle_not_writer(self, request: Request) -> Tuple[int, dict]:
        """``403`` every mutation attempt, pointing the client at the writer."""
        self.replica_stats.mutations_refused += 1
        return 403, {
            "error": f"{request.path} requires the writer role; "
            "this daemon is a read replica",
            "status": 403,
            "role": self.role,
            "writer": self.writer_url,
        }

    async def _handle_stats(self, request: Request) -> Tuple[int, dict]:
        """``GET /stats`` — daemon counters plus the replica's replay state."""
        status, payload = await super()._handle_stats(request)
        payload["replication"].update(
            {
                "writer": self.writer_url,
                "poll_interval_ms": self.poll_interval_ms,
                "replica": asdict(self.replica_stats),
            }
        )
        return status, payload
