"""repro — Spatial-Aware Community (SAC) search over large spatial graphs.

A from-scratch Python reproduction of

    Fang, Cheng, Li, Luo, Hu.
    "Effective Community Search over Large Spatial Graphs."
    PVLDB 10(6): 709-720, 2017.

Given a spatial graph (every vertex has a 2-D location), a query vertex ``q``
and a degree threshold ``k``, SAC search returns the connected subgraph
containing ``q`` whose minimum internal degree is at least ``k`` and whose
minimum covering circle has the smallest possible radius.

Quick start
-----------
>>> from repro import SACSearcher
>>> from repro.datasets import brightkite_like
>>> graph = brightkite_like(num_vertices=2000, seed=7)
>>> searcher = SACSearcher(graph, default_algorithm="appfast")
>>> result = searcher.search(query=graph.labels()[0], k=4)
>>> result is None or result.radius >= 0.0
True

Public surface
--------------
* :class:`repro.SACSearcher` — facade dispatching to all five algorithms.
* :class:`repro.QueryEngine` — shared-preprocessing engine serving many
  queries over one graph (cached core decomposition, k-ĉore components,
  per-component spatial indexes).
* :class:`repro.IncrementalEngine` — the dynamic variant: applies check-ins
  and edge updates to its bound graph in place and repairs the caches
  incrementally instead of rebuilding them.
* :class:`repro.BatchSACProcessor` — engine-backed batch query processing.
* :class:`repro.SACService` — the serving layer: sharded parallel batch
  execution over a process pool plus a persistent, component-version
  invalidated answer cache (:class:`repro.ShardedExecutor`,
  :class:`repro.AnswerCache`); ``save``/``open`` persist it through the
  artifact store.
* :class:`repro.ArtifactStore` — the storage layer: snapshot a graph plus
  every engine artifact to disk, reopen memory-mapped, warm-start engines
  via :meth:`repro.QueryEngine.from_store` with bit-identical answers.
* :class:`repro.SACServer` / :class:`repro.SACClient` — the network layer:
  a long-lived JSON-over-HTTP daemon with micro-batched query coalescing
  and single-writer mutation ordering, plus its stdlib client
  (``repro-sac serve``; see ``docs/serving.md``).
* :mod:`repro.core` — ``exact``, ``exact_plus``, ``app_inc``, ``app_fast``,
  ``app_acc``, ``theta_sac``.
* :mod:`repro.graph` — the :class:`~repro.graph.SpatialGraph` substrate.
* :mod:`repro.kcore` — k-core decomposition and k-ĉore extraction.
* :mod:`repro.geometry` — minimum enclosing circles, grid index, quadtree.
* :mod:`repro.baselines` — ``Global``, ``Local``, ``GeoModu`` comparison methods.
* :mod:`repro.metrics` — radius, distPr, CJS, CAO, approximation ratios.
* :mod:`repro.datasets` — synthetic spatial-graph and check-in generators.
* :mod:`repro.dynamic` — dynamic location streams and SAC tracking.
* :mod:`repro.experiments` — the harness behind the paper's figures.
"""

from repro.core import (
    SACResult,
    SACSearcher,
    app_acc,
    app_fast,
    app_inc,
    exact,
    exact_plus,
    theta_sac,
)
from repro.engine import EngineStats, IncrementalEngine, QueryEngine
from repro.extensions.batch import BatchResult, BatchSACProcessor
from repro.service import AnswerCache, SACService, ShardedExecutor
from repro.exceptions import (
    DatasetError,
    GraphConstructionError,
    InvalidParameterError,
    NoCommunityError,
    ReproError,
    VertexNotFoundError,
)
from repro.graph import GraphBuilder, SpatialGraph
from repro.server import SACClient, SACServer, ServerConfig
from repro.store import ArtifactStore

__version__ = "1.9.0"

__all__ = [
    "__version__",
    "SpatialGraph",
    "GraphBuilder",
    "SACSearcher",
    "SACResult",
    "QueryEngine",
    "IncrementalEngine",
    "EngineStats",
    "BatchSACProcessor",
    "BatchResult",
    "SACService",
    "ShardedExecutor",
    "AnswerCache",
    "ArtifactStore",
    "SACServer",
    "SACClient",
    "ServerConfig",
    "exact",
    "exact_plus",
    "app_inc",
    "app_fast",
    "app_acc",
    "theta_sac",
    "ReproError",
    "GraphConstructionError",
    "VertexNotFoundError",
    "InvalidParameterError",
    "NoCommunityError",
    "DatasetError",
]
