"""Radius-only pseudo-communities (Section 5.2.2, item 3).

The paper briefly evaluates the strawman of taking every vertex inside
``O(q, theta)`` as a "community" with no structural requirement, and observes
that the average internal degree is far below 1 — the members are mostly not
even connected.  This module reproduces that observation.
"""

from __future__ import annotations

from typing import Set

from repro.core.base import validate_query
from repro.exceptions import InvalidParameterError
from repro.graph.spatial_graph import SpatialGraph


def radius_only_community(graph: SpatialGraph, query: int, theta: float) -> Set[int]:
    """Return every vertex within distance ``theta`` of the query vertex.

    No connectivity or degree requirement is applied; the result always
    contains the query itself.
    """
    validate_query(graph, query, 1)
    if theta < 0:
        raise InvalidParameterError(f"theta must be non-negative, got {theta}")
    qx, qy = graph.position(query)
    members = set(graph.vertices_within(qx, qy, theta))
    members.add(query)
    return members


def average_internal_degree(graph: SpatialGraph, members: Set[int]) -> float:
    """Average number of neighbours each member has inside ``members``.

    This is the statistic the paper reports (0.36–0.39 on Brightkite for
    θ ∈ {1e-6, 1e-5}) to argue that locations alone do not make a community.
    """
    if not members:
        return 0.0
    total = 0
    for v in members:
        total += sum(1 for w in graph.neighbors(v) if int(w) in members)
    return total / len(members)
