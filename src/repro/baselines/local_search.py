"""``Local`` baseline (Cui et al., SIGMOD 2014).

Local search expands outwards from the query vertex and stops as soon as the
explored subgraph contains a connected minimum-degree-``k`` subgraph around
the query.  It typically returns much smaller communities than ``Global``
(its circles are "only" ~20× larger than SAC search in Figure 10), because it
never looks at the full k-core.

The expansion order follows the original paper's heuristic spirit: grow a
frontier breadth-first, preferring vertices with many links back into the
explored set, and after each batch of additions test whether the explored set
already contains a k-ĉore with the query.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.core.base import validate_query
from repro.core.result import SACResult
from repro.exceptions import NoCommunityError
from repro.geometry.mec import minimum_enclosing_circle
from repro.graph.spatial_graph import SpatialGraph
from repro.kcore.connected_core import connected_k_core_in_subset
from repro.kcore.decomposition import core_numbers


def local_search(
    graph: SpatialGraph,
    query: int,
    k: int,
    *,
    batch_size: int = 16,
    max_explored: Optional[int] = None,
) -> SACResult:
    """Expand locally from ``query`` until a minimum-degree-``k`` community appears.

    Parameters
    ----------
    graph, query, k:
        Query arguments as elsewhere in the library.
    batch_size:
        Number of vertices added between feasibility probes; larger batches
        mean fewer (expensive) probes at the cost of slightly larger results.
    max_explored:
        Optional cap on the number of explored vertices; ``None`` explores
        until the whole connected component has been seen.

    Raises
    ------
    NoCommunityError
        If no minimum-degree-``k`` community containing the query exists.
    """
    validate_query(graph, query, k)
    cores = core_numbers(graph)
    if cores[query] < k:
        raise NoCommunityError(query, k)

    explored: Set[int] = {query}
    # Priority: prefer vertices with many edges into the explored set, then
    # high core number (they are more likely to complete a k-core quickly).
    counter = 0
    frontier: List[tuple] = []
    in_frontier: Dict[int, int] = {}

    def push_neighbors(vertex: int) -> None:
        nonlocal counter
        for w in graph.neighbors(vertex):
            w = int(w)
            if w in explored:
                continue
            if cores[w] < k:
                continue
            links = in_frontier.get(w, 0) + 1
            in_frontier[w] = links
            counter += 1
            heapq.heappush(frontier, (-links, -int(cores[w]), counter, w))

    push_neighbors(query)
    probes = 0
    since_last_probe = 0

    while frontier:
        _, _, _, vertex = heapq.heappop(frontier)
        if vertex in explored:
            continue
        explored.add(vertex)
        push_neighbors(vertex)
        since_last_probe += 1
        if max_explored is not None and len(explored) > max_explored:
            break
        if since_last_probe >= batch_size or not frontier:
            since_last_probe = 0
            probes += 1
            community = connected_k_core_in_subset(graph, explored, query, k)
            if community is not None:
                return _wrap(graph, query, k, community, len(explored), probes)

    community = connected_k_core_in_subset(graph, explored, query, k)
    if community is not None:
        return _wrap(graph, query, k, community, len(explored), probes + 1)
    raise NoCommunityError(query, k, "local expansion exhausted without finding a community")


def _wrap(
    graph: SpatialGraph,
    query: int,
    k: int,
    community: Set[int],
    explored: int,
    probes: int,
) -> SACResult:
    coords = graph.coordinates
    circle = minimum_enclosing_circle(
        [(float(coords[v, 0]), float(coords[v, 1])) for v in community]
    )
    return SACResult(
        algorithm="local",
        query=query,
        k=k,
        members=frozenset(community),
        circle=circle,
        stats={"explored_vertices": explored, "feasibility_probes": probes},
    )
