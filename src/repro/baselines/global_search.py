"""``Global`` baseline (Sozio & Gionis, "cocktail party", KDD 2010).

The paper describes Global as "find the k-ĉore containing q": the connected
component of the graph's k-core that contains the query vertex.  It ignores
vertex locations entirely, which is why its communities sprawl over circles
roughly 50× larger than SAC search (Figure 10).
"""

from __future__ import annotations

from typing import Optional

from repro.core.result import SACResult
from repro.core.base import validate_query
from repro.exceptions import NoCommunityError
from repro.geometry.mec import minimum_enclosing_circle
from repro.graph.spatial_graph import SpatialGraph
from repro.kcore.connected_core import connected_k_core


def global_search(graph: SpatialGraph, query: int, k: int) -> SACResult:
    """Return the k-ĉore of the whole graph containing ``query``.

    Raises
    ------
    NoCommunityError
        If the query vertex is not part of any k-core.
    """
    validate_query(graph, query, k)
    community = connected_k_core(graph, query, k)
    if not community:
        raise NoCommunityError(query, k)
    coords = graph.coordinates
    circle = minimum_enclosing_circle(
        [(float(coords[v, 0]), float(coords[v, 1])) for v in community]
    )
    return SACResult(
        algorithm="global",
        query=query,
        k=k,
        members=frozenset(community),
        circle=circle,
        stats={"community_size": len(community)},
    )
