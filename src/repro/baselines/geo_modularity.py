"""``GeoModu`` baseline (Chen et al., IJGIS 2015).

GeoModu is a community *detection* method for spatially constrained networks:
each edge ``(i, j)`` is reweighted by ``1 / d_ij^mu`` (``mu`` ∈ {1, 2} in the
paper) and communities are found by modularity maximisation over the weighted
graph.  Given a query vertex we simply return the detected community that
contains it — exactly how the paper uses GeoModu in Figure 10.

The optimiser is a Louvain-style greedy local-moving pass followed by graph
aggregation, repeated until modularity stops improving.  It is deliberately
self-contained (no networkx/python-louvain dependency) and deterministic for
a fixed seed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.base import validate_query
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError
from repro.geometry.mec import minimum_enclosing_circle
from repro.graph.spatial_graph import SpatialGraph

#: Distance floor preventing infinite weights for co-located vertices.
_MIN_DISTANCE = 1e-6


class GeoModularityDetector:
    """Detect communities of a spatial graph by geo-weighted modularity.

    Parameters
    ----------
    graph:
        The spatial graph to partition.
    mu:
        Distance-decay exponent; the paper evaluates ``mu = 1`` and ``mu = 2``.
    max_passes:
        Maximum number of (local-moving + aggregation) passes.
    seed:
        Seed controlling the vertex visiting order of the local-moving phase.
    """

    def __init__(
        self,
        graph: SpatialGraph,
        mu: float = 1.0,
        *,
        max_passes: int = 10,
        seed: int = 0,
    ) -> None:
        if mu <= 0:
            raise InvalidParameterError(f"mu must be positive, got {mu}")
        self.graph = graph
        self.mu = float(mu)
        self.max_passes = max_passes
        self.seed = seed
        self._communities: Optional[List[Set[int]]] = None
        self._membership: Optional[Dict[int, int]] = None

    # -------------------------------------------------------------- weights
    def _edge_weight(self, u: int, v: int) -> float:
        distance = max(self.graph.distance(u, v), _MIN_DISTANCE)
        return 1.0 / (distance ** self.mu)

    def _weighted_edges(self) -> Tuple[List[Tuple[int, int, float]], float]:
        edges = []
        total = 0.0
        for u, v in self.graph.edges():
            weight = self._edge_weight(u, v)
            edges.append((u, v, weight))
            total += weight
        return edges, total

    # --------------------------------------------------------------- louvain
    def detect(self) -> List[Set[int]]:
        """Run the detector and return the list of communities (vertex sets)."""
        if self._communities is not None:
            return self._communities

        n = self.graph.num_vertices
        edges, total_weight = self._weighted_edges()
        if n == 0 or total_weight == 0.0:
            self._communities = [{v} for v in range(n)]
            self._membership = {v: i for i, v in enumerate(range(n))}
            return self._communities

        # `node_members[i]` holds the original vertices merged into super-node i.
        node_members: List[Set[int]] = [{v} for v in range(n)]
        current_edges = edges

        for _ in range(self.max_passes):
            partition, improved = _louvain_local_move(
                len(node_members), current_edges, total_weight, self.seed
            )
            if not improved:
                break
            # Aggregate: merge super-nodes sharing a partition label.
            labels = sorted(set(partition))
            relabel = {label: index for index, label in enumerate(labels)}
            merged_members: List[Set[int]] = [set() for _ in labels]
            for node, label in enumerate(partition):
                merged_members[relabel[label]].update(node_members[node])
            aggregated: Dict[Tuple[int, int], float] = {}
            for u, v, w in current_edges:
                cu, cv = relabel[partition[u]], relabel[partition[v]]
                # Within-community weight becomes a self-loop of the merged
                # super-node; dropping it would understate the community's
                # weighted degree in later passes and cause over-merging.
                key = (cu, cv) if cu <= cv else (cv, cu)
                aggregated[key] = aggregated.get(key, 0.0) + w
            node_members = merged_members
            current_edges = [(u, v, w) for (u, v), w in aggregated.items()]
            if len(node_members) <= 1:
                break

        self._communities = node_members
        self._membership = {}
        for index, members in enumerate(node_members):
            for vertex in members:
                self._membership[vertex] = index
        return self._communities

    def community_of(self, vertex: int) -> Set[int]:
        """Return the detected community containing ``vertex``."""
        self.detect()
        assert self._membership is not None and self._communities is not None
        index = self._membership.get(vertex)
        if index is None:
            return {vertex}
        return set(self._communities[index])


def _louvain_local_move(
    num_nodes: int,
    edges: Sequence[Tuple[int, int, float]],
    total_weight: float,
    seed: int,
) -> Tuple[List[int], bool]:
    """One greedy local-moving phase of Louvain on a weighted graph.

    Returns the partition (community label per node) and whether any move
    improved modularity.
    """
    adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(num_nodes)]
    weighted_degree = [0.0] * num_nodes
    for u, v, w in edges:
        if u == v:
            # Self-loop (internal weight of an aggregated super-node): it
            # contributes to the node's weighted degree but never changes the
            # relative gain of joining one community versus another.
            weighted_degree[u] += 2.0 * w
            continue
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
        weighted_degree[u] += w
        weighted_degree[v] += w

    community = list(range(num_nodes))
    community_total = weighted_degree.copy()
    two_m = 2.0 * total_weight

    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)

    improved_any = False
    for _ in range(20):  # inner sweeps; usually converges in a handful
        moved = 0
        for node in order:
            node = int(node)
            current = community[node]
            # Weights from node to each neighbouring community.
            links: Dict[int, float] = {}
            for neighbor, weight in adjacency[node]:
                links[community[neighbor]] = links.get(community[neighbor], 0.0) + weight
            community_total[current] -= weighted_degree[node]
            community[node] = -1

            best_community = current
            best_gain = links.get(current, 0.0) - community_total[current] * weighted_degree[node] / two_m
            for candidate, link_weight in links.items():
                gain = link_weight - community_total[candidate] * weighted_degree[node] / two_m
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best_community = candidate

            community[node] = best_community
            community_total[best_community] += weighted_degree[node]
            if best_community != current:
                moved += 1
                improved_any = True
        if moved == 0:
            break
    return community, improved_any


def geo_modularity_community(
    graph: SpatialGraph,
    query: int,
    mu: float = 1.0,
    *,
    detector: Optional[GeoModularityDetector] = None,
    seed: int = 0,
) -> SACResult:
    """Return the GeoModu community containing ``query`` wrapped as a result.

    Because GeoModu is a detection method, the community carries no minimum
    degree guarantee; the result's ``k`` field is recorded as 0.  Passing a
    pre-built ``detector`` lets callers amortise the (global) detection cost
    over many queries, as the Figure 10 experiment does.
    """
    validate_query(graph, query, 1)
    if detector is None:
        detector = GeoModularityDetector(graph, mu=mu, seed=seed)
    members = detector.community_of(query)
    coords = graph.coordinates
    circle = minimum_enclosing_circle(
        [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
    )
    return SACResult(
        algorithm=f"geomodu({int(detector.mu)})",
        query=query,
        k=0,
        members=frozenset(members),
        circle=circle,
        stats={"mu": detector.mu, "num_communities": len(detector.detect())},
    )
