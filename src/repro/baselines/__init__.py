"""Baseline community-retrieval methods compared against SAC search.

Section 5.2.2 of the paper compares SAC search against two community-search
(CS) methods for non-spatial graphs and one community-detection (CD) method
for spatial graphs:

* ``Global`` (Sozio & Gionis, KDD 2010) — the k-ĉore of the whole graph
  containing the query vertex;
* ``Local`` (Cui et al., SIGMOD 2014) — local expansion from the query until
  a subgraph of minimum degree ``k`` emerges;
* ``GeoModu`` (Chen et al., IJGIS 2015) — modularity maximisation on a graph
  whose edge weights decay with distance (``1 / d^mu``), a community
  *detection* method that partitions the whole graph;
* ``radius_only`` — the strawman discussed in §5.2.2 item 3: take every
  vertex inside ``O(q, theta)`` as the "community" with no structural
  requirement.
"""

from repro.baselines.geo_modularity import GeoModularityDetector, geo_modularity_community
from repro.baselines.global_search import global_search
from repro.baselines.local_search import local_search
from repro.baselines.radius_only import radius_only_community

__all__ = [
    "global_search",
    "local_search",
    "geo_modularity_community",
    "GeoModularityDetector",
    "radius_only_community",
]
