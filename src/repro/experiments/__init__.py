"""Experiment harness behind the paper's figures and tables.

* :mod:`~repro.experiments.queries` — query-workload selection (the paper
  samples 200 query vertices with core number ≥ 4 per dataset);
* :mod:`~repro.experiments.sweeps` — the parameter grid of Table 5;
* :mod:`~repro.experiments.timing` — wall-clock measurement helpers;
* :mod:`~repro.experiments.tables` — small text-table formatting used by the
  benchmark harness to print paper-style rows.
"""

from repro.experiments.queries import select_query_vertices
from repro.experiments.sweeps import DEFAULT_SWEEPS, ParameterSweep
from repro.experiments.tables import format_table
from repro.experiments.timing import Timer, time_callable

__all__ = [
    "select_query_vertices",
    "ParameterSweep",
    "DEFAULT_SWEEPS",
    "Timer",
    "time_callable",
    "format_table",
]
