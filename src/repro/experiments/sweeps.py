"""Parameter sweeps (Table 5 of the paper).

=============  ===========================================  ========
Parameter      Range                                        Default
=============  ===========================================  ========
``epsilon_f``  0.0, 0.5, 1.0, 1.5, 2.0                      0.5
``epsilon_a``  0.01, 0.05, 0.1, 0.5, 0.9                    0.5
``k``          4, 7, 10, 13, 16                             4
``theta``      1e-6, 1e-5, 1e-4, 1e-3, 1e-2                 1e-4
``n``          20%, 40%, 60%, 80%, 100%                     100%
=============  ===========================================  ========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class ParameterSweep:
    """One experimental parameter with its sweep values and default."""

    name: str
    values: Tuple[float, ...]
    default: float

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)


DEFAULT_SWEEPS: Dict[str, ParameterSweep] = {
    "epsilon_f": ParameterSweep("epsilon_f", (0.0, 0.5, 1.0, 1.5, 2.0), 0.5),
    "epsilon_a": ParameterSweep("epsilon_a", (0.01, 0.05, 0.1, 0.5, 0.9), 0.5),
    "k": ParameterSweep("k", (4, 7, 10, 13, 16), 4),
    "theta": ParameterSweep("theta", (1e-6, 1e-5, 1e-4, 1e-3, 1e-2), 1e-4),
    "fraction": ParameterSweep("fraction", (0.2, 0.4, 0.6, 0.8, 1.0), 1.0),
    "exact_plus_epsilon_a": ParameterSweep(
        "exact_plus_epsilon_a", (1e-6, 1e-5, 1e-4, 1e-3), 1e-4
    ),
}


def defaults() -> Dict[str, float]:
    """Return the default value of every sweep parameter."""
    return {name: sweep.default for name, sweep in DEFAULT_SWEEPS.items()}
