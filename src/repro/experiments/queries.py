"""Query-workload selection.

Section 5.1: "For each dataset, we randomly select 200 query vertices with
core numbers of 4 or more.  Such a core number constraint ensures a
meaningful community (at least 4-ĉore) containing the query vertex."
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.spatial_graph import SpatialGraph
from repro.kcore.decomposition import core_numbers


def select_query_vertices(
    graph: SpatialGraph,
    count: int = 200,
    *,
    min_core: int = 4,
    seed: int = 0,
) -> List[int]:
    """Sample query vertices whose core number is at least ``min_core``.

    Parameters
    ----------
    graph:
        The dataset graph.
    count:
        Number of query vertices to sample (fewer are returned when the
        graph does not contain enough eligible vertices).
    min_core:
        Core-number threshold; the paper uses 4.
    seed:
        Random seed for reproducible workloads.

    Returns
    -------
    list of int
        Sorted list of query vertex indices (unique).
    """
    if count < 1:
        raise InvalidParameterError("count must be at least 1")
    if min_core < 0:
        raise InvalidParameterError("min_core must be non-negative")
    cores = core_numbers(graph)
    eligible = np.nonzero(cores >= min_core)[0]
    if eligible.size == 0:
        return []
    rng = np.random.default_rng(seed)
    take = min(count, int(eligible.size))
    chosen = rng.choice(eligible, size=take, replace=False)
    return sorted(int(v) for v in chosen)
