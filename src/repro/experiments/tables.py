"""Plain-text table formatting for benchmark output.

The benchmark harness prints paper-style rows (one per parameter value or
algorithm) so that EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Parameters
    ----------
    rows:
        Sequence of dictionaries; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
