"""Wall-clock timing helpers for the efficiency experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple


class Timer:
    """Context manager measuring elapsed wall-clock time.

    Examples
    --------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


def average_query_time(
    func: Callable[[int], Any], queries: List[int], *, skip_errors: bool = True
) -> Dict[str, float]:
    """Run ``func(query)`` over a query workload and report timing statistics.

    Returns a dict with ``mean``, ``total``, ``count``, and ``failures``.
    Exceptions are counted as failures when ``skip_errors`` is set.
    """
    total = 0.0
    count = 0
    failures = 0
    for query in queries:
        start = time.perf_counter()
        try:
            func(query)
        except Exception:
            if not skip_errors:
                raise
            failures += 1
            continue
        total += time.perf_counter() - start
        count += 1
    mean = total / count if count else 0.0
    return {"mean": mean, "total": total, "count": count, "failures": failures}
