"""Zero-copy numpy array exchange over ``multiprocessing.shared_memory``.

:class:`SharedArrayPack` lays a set of named numpy arrays into **one**
shared-memory segment: the creator copies each array in exactly once, and
any number of reader processes attach views over the same physical pages —
no pickling, no per-batch serialisation.  The picklable :meth:`spec` is the
only thing that ever crosses a process boundary (segment name plus per-array
dtype/shape/offset), which is how :class:`repro.service.ShardedExecutor`
shrinks its per-batch worker messages from megabytes of component arrays to
a few hundred bytes of query ids.

Lifecycle rules:

* the **creator** owns the segment: it (and only it) unlinks, and a
  ``weakref.finalize`` guard unlinks on garbage collection or interpreter
  exit, so segments never outlive the process even on abnormal shutdown;
* **attachers** only close.  On Python ≥ 3.13 the attach opts out of
  ``resource_tracker`` registration (``track=False``); on older versions the
  attach-side registration is deliberately left in place — pool workers
  share the parent's tracker process, whose ledger is a *set*, so the extra
  registration is a no-op and the owner's single unregister-on-unlink keeps
  the ledger clean.  Explicitly unregistering from a worker would corrupt
  that shared ledger and make the owner's unlink raise inside the tracker.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional

import numpy as np

#: Byte alignment of each array inside the segment (covers every numpy dtype
#: and keeps vectorised loads on natural boundaries).
_ALIGN = 64


def _release(segment: shared_memory.SharedMemory, *, owner: bool) -> None:
    """Finalizer body: close (and, for the owner, unlink) one segment."""
    try:
        segment.close()
    except BufferError:
        # Live numpy views still reference the buffer; the mapping is
        # reclaimed at process exit instead.  Unlinking below still works.
        pass
    except OSError:  # pragma: no cover - already torn down
        pass
    if owner:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform-specific teardown
            pass


class SharedArrayPack:
    """Named numpy arrays packed into one shared-memory segment.

    Create with :meth:`create` (copies the arrays in, owns the segment) or
    :meth:`attach` (maps an existing segment from its :meth:`spec`,
    read-only).  Access arrays with ``pack["name"]``.

    Examples
    --------
    >>> pack = SharedArrayPack.create({"xs": np.arange(4)})  # doctest: +SKIP
    >>> child_view = SharedArrayPack.attach(pack.spec())     # doctest: +SKIP
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        entries: Dict[str, Dict[str, object]],
        *,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._entries = entries
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        self._finalizer = weakref.finalize(self, _release, segment, owner=owner)

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayPack":
        """Materialise ``arrays`` into a fresh segment (this process owns it)."""
        entries: Dict[str, Dict[str, object]] = {}
        offset = 0
        contiguous: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            offset = -(-offset // _ALIGN) * _ALIGN  # round up to alignment
            entries[name] = {
                "dtype": str(array.dtype),
                "shape": tuple(array.shape),
                "offset": offset,
            }
            offset += array.nbytes
        segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, array in contiguous.items():
            entry = entries[name]
            view = np.ndarray(
                entry["shape"],  # type: ignore[arg-type]
                dtype=entry["dtype"],  # type: ignore[arg-type]
                buffer=segment.buf,
                offset=int(entry["offset"]),  # type: ignore[arg-type]
            )
            view[...] = array
            del view
        return cls(segment, entries, owner=True)

    @classmethod
    def attach(cls, spec: Mapping[str, object]) -> "SharedArrayPack":
        """Map an existing segment from a :meth:`spec` dict (read-only views)."""
        name = str(spec["name"])
        try:
            segment = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:  # Python < 3.13: no track flag (see module docstring)
            segment = shared_memory.SharedMemory(name=name)
        entries = {
            array_name: dict(entry)
            for array_name, entry in dict(spec["arrays"]).items()  # type: ignore[arg-type]
        }
        return cls(segment, entries, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._views.clear()
        self._finalizer.detach()
        _release(self._segment, owner=False)

    def unlink(self) -> None:
        """Close and destroy the segment (owner only)."""
        self._views.clear()
        self._finalizer.detach()
        _release(self._segment, owner=True)

    # ------------------------------------------------------------------ views
    def __getitem__(self, name: str) -> np.ndarray:
        """Return the (cached) view of one packed array.

        Views are writable for the owner and read-only for attachers, so a
        worker can never scribble on arrays the parent still serves from.
        """
        view = self._views.get(name)
        if view is None:
            entry = self._entries[name]
            view = np.ndarray(
                tuple(entry["shape"]),  # type: ignore[arg-type]
                dtype=str(entry["dtype"]),
                buffer=self._segment.buf,
                offset=int(entry["offset"]),  # type: ignore[arg-type]
            )
            if not self._owner:
                view.flags.writeable = False
            self._views[name] = view
        return view

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------------ info
    @property
    def name(self) -> str:
        """Kernel name of the backing segment."""
        return self._segment.name

    @property
    def nbytes(self) -> int:
        """Allocated size of the segment in bytes."""
        return self._segment.size

    def spec(self) -> Dict[str, object]:
        """Picklable description another process can :meth:`attach` from."""
        return {
            "name": self._segment.name,
            "arrays": {name: dict(entry) for name, entry in self._entries.items()},
        }
