"""Append-only write-ahead log for replicating engine mutations.

The replication tier (:mod:`repro.replication`) keeps N read replicas
bit-identical to one writer by replaying the writer's mutation stream: every
``checkin``/``edge`` the writer applies is appended here as one framed
record, and replicas tail the log with a :class:`WalCursor`, feeding each
record through :meth:`repro.engine.IncrementalEngine.apply_record`.

Format
------
A log is a directory of **segment** files named ``wal-<first_lsn>.seg``,
where ``<first_lsn>`` is the LSN the segment starts at (zero-padded so
lexicographic order is LSN order).  Each record is framed as::

    <length:4 LE> <crc32(payload):4 LE> <payload: UTF-8 JSON>

The payload is a JSON object whose first key is the record's ``lsn`` —
log sequence numbers are assigned by the writer, start at 1, and increase
by exactly 1 per record with no gaps inside the retained log.

Crash safety
------------
* A torn tail (process killed mid-append) is detected on reopen — the
  trailing bytes fail the length or CRC check and are truncated, and the
  writer resumes at the last *durable* LSN + 1.
* Readers treat an incomplete or CRC-failing tail as "not yet written" and
  simply retry on the next poll; a partially flushed record is therefore
  never replayed.
* :meth:`WriteAheadLog.rotate` (log compaction) creates the new segment
  before unlinking old ones, so a concurrent reader either still sees the
  old records or observes a clean gap — never an empty directory.  A reader
  whose position was compacted away gets :class:`WalGapError` and must
  resync from the snapshot that covered the compaction point.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.exceptions import StoreError

#: Record header: payload length then CRC-32 of the payload, little-endian.
_HEADER = struct.Struct("<II")

#: Upper bound on one record's payload; anything larger is corruption.
_MAX_RECORD_BYTES = 1 << 24

#: Segment file names sort lexicographically in LSN order at this width.
_LSN_DIGITS = 20


class WalError(StoreError):
    """A write-ahead log is corrupt or was used inconsistently."""


class WalGapError(WalError):
    """The requested LSN was compacted out of the log.

    Raised by :meth:`WalCursor.poll` when the oldest retained segment starts
    *after* the cursor's next LSN.  The reader must resync from a snapshot
    whose manifest LSN is at least ``available_lsn - 1`` and resume from
    there.
    """

    def __init__(self, needed_lsn: int, available_lsn: int) -> None:
        super().__init__(
            f"WAL records from lsn {needed_lsn} were compacted away; "
            f"log now starts at lsn {available_lsn} — resync from snapshot"
        )
        self.needed_lsn = needed_lsn
        self.available_lsn = available_lsn


def _segment_name(first_lsn: int) -> str:
    """File name of the segment starting at ``first_lsn``."""
    return f"wal-{first_lsn:0{_LSN_DIGITS}d}.seg"


def _segments(path: Path) -> List[Tuple[int, Path]]:
    """All segment files under ``path`` as ``(first_lsn, file)``, sorted."""
    found: List[Tuple[int, Path]] = []
    for entry in path.glob("wal-*.seg"):
        digits = entry.name[len("wal-") : -len(".seg")]
        if digits.isdigit():
            found.append((int(digits), entry))
    found.sort()
    return found


def _scan_frames(buffer: bytes, base_offset: int) -> List[Tuple[int, bytes]]:
    """Parse complete, CRC-valid frames out of ``buffer``.

    Returns ``(end_offset, payload)`` pairs where ``end_offset`` is absolute
    (``base_offset``-relative input, absolute output).  Scanning stops at the
    first incomplete or CRC-failing frame — by construction that is either
    the torn tail of a crashed writer or bytes a live writer has not finished
    flushing; callers decide whether to truncate (writer recovery) or retry
    later (readers).
    """
    frames: List[Tuple[int, bytes]] = []
    offset = 0
    end = len(buffer)
    while offset + _HEADER.size <= end:
        length, crc = _HEADER.unpack_from(buffer, offset)
        stop = offset + _HEADER.size + length
        if length > _MAX_RECORD_BYTES or stop > end:
            break
        payload = buffer[offset + _HEADER.size : stop]
        if zlib.crc32(payload) != crc:
            break
        frames.append((base_offset + stop, payload))
        offset = stop
    return frames


def _decode(payload: bytes, source: str) -> Dict[str, object]:
    """Decode one CRC-verified payload into its record dict."""
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WalError(f"{source}: undecodable WAL record: {error}") from None
    if not isinstance(record, dict) or not isinstance(record.get("lsn"), int):
        raise WalError(f"{source}: WAL record lacks an integer lsn")
    return record


class WriteAheadLog:
    """The single writer's append handle over a WAL directory.

    Opening recovers the log: the last segment's torn tail (if any) is
    truncated and appending resumes at the last durable LSN + 1.  Exactly one
    process may hold a :class:`WriteAheadLog` on a directory at a time; any
    number of :class:`WalCursor` readers may tail it concurrently.

    Parameters
    ----------
    path:
        The WAL directory (created if missing).
    start_lsn:
        First LSN of a *fresh* log (ignored when segments already exist).
        A writer warm-starting from a snapshot at manifest LSN ``L`` with no
        retained WAL passes ``L + 1``.
    fsync:
        When true, ``fsync`` after every append — durable against machine
        crashes, at a heavy per-record cost.  The default flushes to the OS
        (durable against *process* crashes), which is the right trade for
        the replication tier where the snapshot is the recovery anchor.
    """

    def __init__(
        self, path: "str | Path", *, start_lsn: int = 1, fsync: bool = False
    ) -> None:
        if start_lsn < 1:
            raise WalError(f"start_lsn must be >= 1, got {start_lsn}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        segments = _segments(self.path)
        if not segments:
            self._segment_first = start_lsn
            self._next_lsn = start_lsn
            segment_path = self.path / _segment_name(start_lsn)
            self._file = open(segment_path, "ab")
            return
        first_lsn, tail_path = segments[-1]
        raw = tail_path.read_bytes()
        frames = _scan_frames(raw, 0)
        durable_end = frames[-1][0] if frames else 0
        if durable_end < len(raw):
            # Torn tail from a crashed append: drop the partial record so
            # the next append lands on a clean frame boundary.
            with open(tail_path, "r+b") as handle:
                handle.truncate(durable_end)
        self._segment_first = first_lsn
        if frames:
            last = _decode(frames[-1][1], str(tail_path))
            self._next_lsn = int(last["lsn"]) + 1
        else:
            self._next_lsn = first_lsn
        self._file = open(tail_path, "ab")

    # ------------------------------------------------------------- appending
    @property
    def next_lsn(self) -> int:
        """The LSN the next :meth:`append` will assign."""
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """The last durable LSN (0 when the log has never been written)."""
        return self._next_lsn - 1

    def append(self, record: Dict[str, object]) -> int:
        """Append one mutation record; returns its assigned LSN.

        The record must be JSON-serialisable; an ``lsn`` key, if present, is
        ignored and replaced by the assigned sequence number.
        """
        lsn = self._next_lsn
        body = {"lsn": lsn}
        body.update((key, value) for key, value in record.items() if key != "lsn")
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        if len(payload) > _MAX_RECORD_BYTES:
            raise WalError(f"WAL record of {len(payload)} bytes exceeds the frame limit")
        self._file.write(_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._next_lsn = lsn + 1
        return lsn

    # ------------------------------------------------------------ compaction
    def rotate(self) -> int:
        """Start a fresh segment at ``next_lsn`` and drop all older ones.

        This is the log-compaction primitive: the caller first snapshots the
        engine with ``lsn=self.last_lsn`` (so every dropped record is covered
        by the snapshot), then rotates.  The new segment is created *before*
        old segments are unlinked.  Returns the first LSN of the new segment.
        """
        old = [segment_path for _, segment_path in _segments(self.path)]
        self._file.close()
        self._segment_first = self._next_lsn
        self._file = open(self.path / _segment_name(self._next_lsn), "ab")
        for segment_path in old:
            try:
                segment_path.unlink()
            except FileNotFoundError:
                pass
        return self._segment_first

    def close(self) -> None:
        """Flush and close the active segment file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        """Context-manager entry: returns the log itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: closes the active segment."""
        self.close()


class WalCursor:
    """A follower's read position in a WAL directory.

    Cursors are cheap, stateful, and safe against a concurrently appending
    writer: each :meth:`poll` returns every *complete* record at or beyond
    the cursor's ``next_lsn`` and advances past them.  An in-flight append is
    simply absent from this poll and picked up by the next one.  Readers and
    the writer share no state but the directory.
    """

    def __init__(self, path: "str | Path", *, start_lsn: int = 1) -> None:
        if start_lsn < 1:
            raise WalError(f"start_lsn must be >= 1, got {start_lsn}")
        self.path = Path(path)
        self.next_lsn = start_lsn
        # (segment_first_lsn, byte_offset) of the scan position, so tailing
        # an active segment re-reads only bytes appended since last poll.
        self._position: Optional[Tuple[int, int]] = None

    def poll(self, max_records: Optional[int] = None) -> List[Dict[str, object]]:
        """Return new records in LSN order, advancing the cursor past them.

        Raises :class:`WalGapError` when the cursor's position was compacted
        away (see :meth:`WriteAheadLog.rotate`).  Returns an empty list when
        the log has no news — including when the directory does not exist
        yet, so a replica can start before its writer.
        """
        if not self.path.is_dir():
            return []
        segments = _segments(self.path)
        if not segments:
            return []
        if self.next_lsn < segments[0][0]:
            raise WalGapError(self.next_lsn, segments[0][0])
        records: List[Dict[str, object]] = []
        for first_lsn, segment_path in segments:
            if first_lsn > self.next_lsn:
                # Contiguity check: the next segment may only begin exactly
                # where the cursor stands; anything else means the writer
                # rotated past us mid-iteration.
                raise WalGapError(self.next_lsn, first_lsn)
            offset = 0
            if self._position is not None and self._position[0] == first_lsn:
                offset = self._position[1]
            try:
                with open(segment_path, "rb") as handle:
                    handle.seek(offset)
                    buffer = handle.read()
            except FileNotFoundError:
                # Rotated away between listing and open; re-poll cleanly.
                self._position = None
                return records
            for end_offset, payload in _scan_frames(buffer, offset):
                record = _decode(payload, str(segment_path))
                lsn = int(record["lsn"])
                if lsn >= self.next_lsn:
                    if lsn != self.next_lsn:
                        raise WalError(
                            f"{segment_path}: expected lsn {self.next_lsn}, "
                            f"found {lsn} — WAL sequence is broken"
                        )
                    records.append(record)
                    self.next_lsn = lsn + 1
                self._position = (first_lsn, end_offset)
                if max_records is not None and len(records) >= max_records:
                    return records
        return records
