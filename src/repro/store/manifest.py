"""The versioned manifest shared by every on-disk artifact format.

One schema covers both persistent surfaces of the library:

* **store directories** (:class:`repro.store.ArtifactStore`) — a
  ``manifest.json`` next to flat ``.npy`` blobs, ``kind="engine"``;
* **graph ``.npz`` caches** (:func:`repro.graph.io.save_graph_npz`) — the
  same JSON embedded as the ``manifest`` member of the archive,
  ``kind="graph"``.

Both carry the same ``format``/``version`` header and the same per-array
descriptors (``dtype`` + ``shape``), so corruption and version skew are
detected the same way everywhere.  Bump :data:`STORE_VERSION` whenever the
layout changes incompatibly; readers refuse newer versions with a clear
error instead of misinterpreting bytes.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.exceptions import ReproError, StoreError

#: Identifies a file/directory as belonging to this library's store format.
STORE_FORMAT = "repro-store"

#: Current on-disk layout version.  Version 1 unified the previously ad-hoc
#: synthetic-graph ``.npz`` cache with the engine snapshot directories.
STORE_VERSION = 1


def manifest_header(kind: str) -> Dict[str, object]:
    """Return the common header every manifest starts with."""
    return {"format": STORE_FORMAT, "version": STORE_VERSION, "kind": kind}


def check_manifest(
    manifest: object,
    *,
    kind: str,
    source: str,
    error: Type[ReproError] = StoreError,
) -> Dict[str, object]:
    """Validate a parsed manifest header; return the manifest on success.

    Raises ``error`` (default :class:`~repro.exceptions.StoreError`;
    :mod:`repro.graph.io` passes :class:`~repro.exceptions.DatasetError`)
    when the manifest is not a dict, announces a foreign format, a different
    ``kind``, or a version this build cannot read — newer versions fail with
    an explicit skew message rather than a misparse.
    """
    if not isinstance(manifest, dict):
        raise error(f"{source}: manifest is not a JSON object")
    if manifest.get("format") != STORE_FORMAT:
        raise error(
            f"{source}: not a {STORE_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("version")
    if not isinstance(version, int) or version < 1:
        raise error(f"{source}: malformed manifest version {version!r}")
    if version > STORE_VERSION:
        raise error(
            f"{source}: written by {STORE_FORMAT} version {version}, but this "
            f"build reads up to version {STORE_VERSION} — upgrade the library "
            "or regenerate the snapshot"
        )
    if manifest.get("kind") != kind:
        raise error(
            f"{source}: manifest kind {manifest.get('kind')!r} "
            f"does not match expected {kind!r}"
        )
    return manifest


def array_entry(array: np.ndarray, file: str) -> Dict[str, object]:
    """Build the manifest descriptor of one persisted array."""
    return {"file": file, "dtype": str(array.dtype), "shape": list(array.shape)}


def check_array(
    array: np.ndarray,
    entry: Dict[str, object],
    *,
    source: str,
    error: Type[ReproError] = StoreError,
) -> np.ndarray:
    """Verify a loaded array against its manifest descriptor."""
    if str(array.dtype) != entry.get("dtype") or list(array.shape) != entry.get("shape"):
        raise error(
            f"{source}: array {entry.get('file')!r} is "
            f"{array.dtype}{array.shape}, manifest says "
            f"{entry.get('dtype')}{tuple(entry.get('shape', ()))} — "
            "the blob does not match its manifest"
        )
    return array
