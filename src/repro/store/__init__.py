"""The storage layer: persistent artifacts, memory-mapped warm starts.

Everything above the graph substrate computes artifacts that outlive the
process that computed them — the parsed graph, the core decomposition, the
per-``(k, component)`` candidate bundles.  This package decouples those
artifacts from the computing process:

* :class:`ArtifactStore` — snapshot a live engine's graph and caches to a
  directory holding a versioned JSON manifest plus one uncompressed
  ``arrays.npz`` pack of flat ``.npy`` array members, and reopen them
  **memory-mapped and read-only**;
  :meth:`repro.engine.QueryEngine.from_store` /
  :meth:`repro.engine.IncrementalEngine.from_store` warm-start from one with
  bit-identical answers to a cold build (engines copy-on-first-mutate, so
  dynamic updates still work and the snapshot is never written through);
* :class:`SharedArrayPack` — the zero-copy shard transport:
  :class:`repro.service.ShardedExecutor` materialises each component's
  arrays once into a ``multiprocessing.shared_memory`` segment and workers
  attach views, so per-batch messages carry query ids instead of megabytes;
* :mod:`repro.store.manifest` — the shared versioned manifest schema, also
  embedded in the graph ``.npz`` cache format of :mod:`repro.graph.io`;
* :class:`WriteAheadLog` / :class:`WalCursor` — the append-only mutation
  log that keeps :mod:`repro.replication` read replicas bit-identical to
  the single writer: framed JSON records with monotonic LSNs and CRCs,
  torn-tail recovery, and segment rotation for log compaction.
"""

from repro.store.artifact_store import ArtifactStore
from repro.store.manifest import STORE_FORMAT, STORE_VERSION
from repro.store.sharedmem import SharedArrayPack
from repro.store.wal import WalCursor, WalError, WalGapError, WriteAheadLog

__all__ = [
    "ArtifactStore",
    "SharedArrayPack",
    "STORE_FORMAT",
    "STORE_VERSION",
    "WalCursor",
    "WalError",
    "WalGapError",
    "WriteAheadLog",
]
