"""Persist engine artifacts to disk and reopen them memory-mapped.

An :class:`ArtifactStore` snapshot is a directory of two files: a versioned
``manifest.json`` and one **uncompressed** ``arrays.npz`` pack holding every
array blob — the bound graph's CSR arrays and coordinates, the core-number
vector, every cached k-ĉore labelling, and every per-``(k, representative)``
:class:`~repro.core.base.CandidateArtifacts` bundle including its grid-index
state, so nothing is re-sorted at load time.  Uncompressed ``.npz`` is a
plain zip of ``.npy`` members, which buys the best of both worlds: any
member remains readable with stock ``numpy.load`` for debugging, yet
:meth:`open` maps the whole pack **once** and serves every array as a
read-only zero-copy view over the shared pages — opening a snapshot costs
one JSON parse, one ``mmap``, and a few hundred bytes of zip bookkeeping
regardless of how much artifact data it holds.  That is what makes
:meth:`repro.engine.QueryEngine.from_store` warm-start in milliseconds where
a cold build pays parsing, decomposition, labelling, and per-component index
construction.

The snapshot is never written through: graphs and engines attached to a
store copy-on-first-mutate (see
:meth:`repro.graph.SpatialGraph.update_location` and
:class:`repro.engine.IncrementalEngine`), so one snapshot can back any
number of concurrent processes — the mapped pages are shared by the
operating system.
"""

from __future__ import annotations

import io
import json
import mmap
import re
import struct
import zipfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import StoreError
from repro.geometry.grid import GridIndex
from repro.graph.spatial_graph import SpatialGraph
from repro.store.manifest import (
    STORE_VERSION,
    array_entry,
    check_array,
    check_manifest,
    manifest_header,
)

#: File name of the array pack inside a snapshot directory.
PACK_NAME = "arrays.npz"

#: Arrays of one graph snapshot, in manifest order.
_GRAPH_ARRAYS = ("indptr", "indices32", "indices64", "coords")

#: Fast-path matcher for the simple (non-structured) .npy header dicts numpy
#: writes for every array this library persists.  Anything it cannot match
#: falls back to numpy's own (slower, fully general) header parser.
_NPY_HEADER = re.compile(
    rb"\{'descr': '([^']+)', 'fortran_order': (True|False), "
    rb"'shape': \(([0-9, ]*)\), \}"
)

def _narrow_ints(array: np.ndarray) -> np.ndarray:
    """Compress a non-negative int64 array to int32 when every value fits.

    Bundle integer arrays (members, local CSR, grid order/starts) are all
    non-negative indices; on million-vertex graphs int32 halves their pack
    footprint and the resident cost of cold pages.  The narrow form is a
    *storage* layout only — :meth:`ArtifactStore.load_bundle` widens back to
    the engine's canonical int64 before any kernel sees the data.
    """
    if array.dtype == np.int64 and (
        array.size == 0 or int(array.max()) <= np.iinfo(np.int32).max
    ):
        return array.astype(np.int32)
    return array


def _narrow_coords(array: np.ndarray) -> np.ndarray:
    """Compress float64 coordinates to float32 only when exactly lossless.

    Narrowing is refused unless every value round-trips bit-identically
    through float32 — distance comparisons and MEC radii must not move, the
    store's contract is byte-identical answers after a reopen.
    """
    if array.dtype != np.float64 or array.size == 0:
        return array
    narrow = array.astype(np.float32)
    if np.array_equal(narrow.astype(np.float64), array):
        return narrow
    return array


def _widen(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Return ``array`` in the engine's canonical ``dtype`` (view when already there)."""
    if array.dtype == dtype:
        return array
    return array.astype(dtype)


def bundle_from_state(state: Mapping[str, object]):
    """Build one live ``CandidateArtifacts`` from raw persisted bundle arrays.

    ``state`` has the :meth:`ArtifactStore.bundle_state` shape.  Arrays
    already at full width attach as-is (zero-copy for mmap views);
    compressed (int32/float32) arrays widen into private int64/float64
    copies, so every kernel downstream sees the canonical layout a cold
    build produces and answers stay bit-identical regardless of the storage
    dtype.  The coordinate matrix is shared between the bundle and its grid,
    preserving the in-place-patch invariant of
    :meth:`repro.geometry.grid.GridIndex.move_point`.
    """
    # Imported here, not at module level: repro.core.base sits above the
    # graph layer, which (via repro.graph.io's manifest sharing) imports
    # this package — a top-level import would be circular.
    from repro.core.base import CandidateArtifacts

    members = _widen(np.asarray(state["members"]), np.dtype(np.int64))
    coords = _widen(np.asarray(state["coords"]), np.dtype(np.float64))
    grid_state = dict(state["grid"])
    grid_state["order"] = np.asarray(grid_state["order"])
    grid_state["starts"] = np.asarray(grid_state["starts"])
    grid = GridIndex.from_state(coords, grid_state)
    candidate_list = members.tolist()
    return CandidateArtifacts(
        candidates=frozenset(candidate_list),
        candidate_list=candidate_list,
        candidate_array=members,
        candidate_coords=coords,
        grid=grid,
        local_indptr=_widen(np.asarray(state["local_indptr"]), np.dtype(np.int64)),
        local_indices=_widen(np.asarray(state["local_indices"]), np.dtype(np.int64)),
    )


class _BlobPack:
    """Zero-copy read-only views over one uncompressed ``.npz`` pack.

    ``numpy.load`` would re-open, re-resolve, and re-parse per member; this
    reader maps the archive once and slices ``.npy`` members straight out of
    the map.  Only the layout ``numpy.savez`` itself produces is accepted:
    ZIP-stored (uncompressed) members in ``.npy`` format versions 1.0/2.0.
    """

    def __init__(self, path: Path) -> None:
        try:
            self._file = open(path, "rb")
        except OSError as error:
            raise StoreError(f"{path}: cannot open array pack: {error}") from None
        try:
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            with zipfile.ZipFile(self._file) as archive:
                infos = archive.infolist()
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            self._file.close()
            raise StoreError(f"{path}: array pack is corrupt: {error}") from None
        self._path = path
        self._members: Dict[str, Tuple[int, int]] = {}
        for info in infos:
            if info.compress_type != zipfile.ZIP_STORED:
                self._map.close()
                self._file.close()
                raise StoreError(
                    f"{path}: member {info.filename!r} is compressed; "
                    "snapshots are written uncompressed"
                )
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            self._members[name] = (info.header_offset, info.file_size)

    def array(self, name: str) -> np.ndarray:
        """Return the named member as a read-only view over the map."""
        member = self._members.get(name)
        if member is None:
            raise StoreError(f"{self._path}: missing blob {name!r}")
        header_offset, size = member
        try:
            # Skip the fixed zip local-file header (30 bytes) plus its
            # variable name/extra fields to reach the embedded .npy bytes.
            name_len, extra_len = struct.unpack_from(
                "<HH", self._map, header_offset + 26
            )
            start = header_offset + 30 + name_len + extra_len
            blob = memoryview(self._map)[start : start + size]
            shape, fortran, dtype, data_offset = self._parse_npy_header(name, blob)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            array = np.frombuffer(blob, dtype=dtype, count=count, offset=data_offset)
            return array.reshape(shape, order="F" if fortran else "C")
        except StoreError:
            raise
        except (ValueError, struct.error) as error:
            raise StoreError(
                f"{self._path}: blob {name!r} is corrupt: {error}"
            ) from None

    def release(self, names) -> None:
        """Advise the kernel to drop the named members' resident pages.

        ``MADV_DONTNEED`` on a read-only shared file mapping discards the
        page-cache references held through this map; a later access simply
        faults the bytes back in from the file.  This is what keeps evicting
        a store-backed bundle an actual RSS reduction rather than a Python
        bookkeeping exercise.  Platforms without ``madvise`` no-op.
        """
        if not hasattr(self._map, "madvise") or not hasattr(mmap, "MADV_DONTNEED"):
            return
        page = mmap.PAGESIZE
        for name in names:
            member = self._members.get(name)
            if member is None:
                continue
            header_offset, size = member
            start = (header_offset // page) * page
            length = header_offset + 30 + size - start  # header + data, roughly
            length = min(length, len(self._map) - start)
            try:
                self._map.madvise(mmap.MADV_DONTNEED, start, length)
            except (OSError, ValueError):
                return

    def _parse_npy_header(self, name: str, blob: memoryview):
        """Parse one member's ``.npy`` header: ``(shape, fortran, dtype, offset)``.

        The common simple-dtype header is matched with one regex (numpy's
        general parser costs an ``ast`` compile per array, which dominates a
        snapshot open); anything unusual falls back to numpy's own reader.
        """
        if bytes(blob[:6]) != b"\x93NUMPY":
            raise StoreError(f"{self._path}: blob {name!r} is not .npy data")
        major = blob[6]
        if major == 1:
            (header_len,) = struct.unpack_from("<H", blob, 8)
            data_offset = 10 + header_len
        elif major == 2:
            (header_len,) = struct.unpack_from("<I", blob, 8)
            data_offset = 12 + header_len
        else:
            raise StoreError(
                f"{self._path}: blob {name!r} uses unsupported .npy version {major}"
            )
        match = _NPY_HEADER.match(bytes(blob[data_offset - header_len : data_offset]).strip())
        if match is not None:
            descr, fortran, shape_text = match.groups()
            shape = tuple(
                int(part) for part in shape_text.decode().split(",") if part.strip()
            )
            return shape, fortran == b"True", np.dtype(descr.decode()), data_offset
        handle = io.BytesIO(blob)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        else:
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        return shape, fortran, dtype, handle.tell()


class ArtifactStore:
    """A reopened (or freshly written) on-disk snapshot of engine artifacts.

    Instances are created through :meth:`open` (attach an existing snapshot,
    memory-mapped) or :meth:`save` (write a new snapshot from a live engine).

    Examples
    --------
    >>> ArtifactStore.save("g.store", engine)                # doctest: +SKIP
    >>> engine = QueryEngine.from_store("g.store")           # doctest: +SKIP
    """

    def __init__(self, path: Path, manifest: Dict[str, object]) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self._pack: Optional[_BlobPack] = None
        self._bundle_index: Optional[Dict[Tuple[int, int], Dict[str, object]]] = None

    # ------------------------------------------------------------------ open
    @classmethod
    def open(cls, path: "str | Path") -> "ArtifactStore":
        """Attach an existing snapshot directory, validating its manifest.

        The array pack is *not* touched here — it is mapped lazily on the
        first array access, once, by :meth:`graph` / :meth:`engine_state`.
        """
        path = Path(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.is_file():
            raise StoreError(f"{path} is not an artifact store (no manifest.json)")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise StoreError(f"{path}: manifest.json is unreadable: {error}") from None
        check_manifest(manifest, kind="engine", source=str(path))
        return cls(path, manifest)

    def _array(self, entry: Mapping[str, object]) -> np.ndarray:
        """Fetch one blob from the pack, verified against its descriptor."""
        if self._pack is None:
            self._pack = _BlobPack(self.path / PACK_NAME)
        array = self._pack.array(str(entry.get("file")))
        return check_array(array, dict(entry), source=str(self.path))

    def graph(self) -> SpatialGraph:
        """Reattach the snapshot's graph as zero-copy views over the map."""
        section = self.manifest.get("graph")
        if not isinstance(section, dict) or "arrays" not in section:
            raise StoreError(f"{self.path}: manifest has no graph section")
        entries = section["arrays"]
        try:
            arrays = {name: self._array(entries[name]) for name in _GRAPH_ARRAYS}
        except KeyError as missing:
            raise StoreError(
                f"{self.path}: manifest graph section lacks array {missing}"
            ) from None
        labels = self._array(section["labels"]).tolist() if "labels" in section else None
        return SpatialGraph.attach_arrays(arrays, labels=labels)

    def engine_state(self, *, include_bundles: bool = True) -> Dict[str, object]:
        """Reattach the snapshot's engine caches, memory-mapped.

        Returns the dict shape :meth:`repro.engine.QueryEngine.install_state`
        consumes: the core-number vector (or ``None``), per-``k`` labellings
        as ``(labels, count, representatives)``, and per-``(k,
        representative)`` :class:`~repro.core.base.CandidateArtifacts`
        bundles whose grids are rebuilt from persisted state rather than
        re-sorted.  With ``include_bundles=False`` the bundle dict is left
        empty — the lazy-residency warm start installs cores and labellings
        eagerly (both are O(n) vectors needed for component lookup) and
        materialises bundles one at a time through :meth:`load_bundle`.
        """
        cores_entry = self.manifest.get("cores")
        cores = self._array(cores_entry) if cores_entry else None

        labellings: Dict[int, Tuple[np.ndarray, int, np.ndarray]] = {}
        for item in self.manifest.get("labellings", []):
            k = int(item["k"])
            labellings[k] = (
                self._array(item["labels"]),
                int(item["count"]),
                self._array(item["reps"]),
            )

        bundles: Dict[Tuple[int, int], object] = {}
        if include_bundles:
            for key in self.bundle_keys():
                bundles[key] = self.load_bundle(*key)
        return {"cores": cores, "labellings": labellings, "bundles": bundles}

    # --------------------------------------------------------------- bundles
    def _bundle_entry(self, k: int, representative: int) -> Dict[str, object]:
        """Manifest entry of one bundle, or raise :class:`StoreError`."""
        if self._bundle_index is None:
            self._bundle_index = {
                (int(item["k"]), int(item["representative"])): item
                for item in self.manifest.get("bundles", [])
            }
        entry = self._bundle_index.get((int(k), int(representative)))
        if entry is None:
            raise StoreError(
                f"{self.path}: snapshot holds no bundle (k={k}, rep={representative})"
            )
        return entry

    def bundle_keys(self) -> Tuple[Tuple[int, int], ...]:
        """All ``(k, representative)`` bundle keys present in the snapshot."""
        return tuple(
            (int(item["k"]), int(item["representative"]))
            for item in self.manifest.get("bundles", [])
        )

    def has_bundle(self, k: int, representative: int) -> bool:
        """Whether the snapshot persists a bundle for ``(k, representative)``."""
        try:
            self._bundle_entry(k, representative)
        except StoreError:
            return False
        return True

    def bundle_members(self, k: int, representative: int) -> np.ndarray:
        """The bundle's sorted member-vertex array, mapped (possibly int32).

        This is the cheap membership probe the residency layer keeps for
        *non-resident* bundles: one blob view, no grid or CSR attach, so
        mutation routing can test whether an update touches a bundle without
        materialising it.
        """
        return self._array(self._bundle_entry(k, representative)["members"])

    def bundle_nbytes(self, k: int, representative: int) -> int:
        """Pack bytes of one bundle's blobs, computed from the manifest alone."""
        entry = self._bundle_entry(k, representative)
        arrays = [
            entry["members"],
            entry["coords"],
            entry["local_indptr"],
            entry["local_indices"],
            entry["grid"]["order"],
            entry["grid"]["starts"],
        ]
        total = 0
        for spec in arrays:
            count = 1
            for dim in spec["shape"]:
                count *= int(dim)
            total += count * np.dtype(str(spec["dtype"])).itemsize
        return total

    def load_bundle(self, k: int, representative: int):
        """Materialise exactly one bundle from the pack, canonically typed.

        Blobs stored at full width attach as zero-copy views over the map;
        compressed (int32/float32) blobs widen into private int64/float64
        arrays here, so every kernel downstream sees the same layout a cold
        build produces and answers stay bit-identical regardless of the
        storage dtype.  Nothing else in the pack is touched.
        """
        return bundle_from_state(self.bundle_state(k, representative))

    def bundle_state(self, k: int, representative: int) -> Dict[str, object]:
        """One bundle's raw persisted arrays, zero-copy, for re-saving.

        :meth:`save` accepts these dicts in place of live
        :class:`~repro.core.base.CandidateArtifacts`, which lets
        ``export_state`` carry *clean, non-resident* bundles from the old
        snapshot into a new one without materialising (or widening) them.
        """
        entry = self._bundle_entry(k, representative)
        grid_section = entry["grid"]
        return {
            "members": self._array(entry["members"]),
            "coords": self._array(entry["coords"]),
            "local_indptr": self._array(entry["local_indptr"]),
            "local_indices": self._array(entry["local_indices"]),
            "grid": {
                "min_x": grid_section["min_x"],
                "min_y": grid_section["min_y"],
                "cell": grid_section["cell"],
                "cols": grid_section["cols"],
                "rows": grid_section["rows"],
                "order": self._array(grid_section["order"]),
                "starts": self._array(grid_section["starts"]),
            },
        }

    def release_bundle(self, k: int, representative: int) -> None:
        """Drop one bundle's resident pack pages (see :meth:`_BlobPack.release`)."""
        if self._pack is None:
            return
        try:
            entry = self._bundle_entry(k, representative)
        except StoreError:
            return
        names = [
            str(entry["members"]["file"]),
            str(entry["coords"]["file"]),
            str(entry["local_indptr"]["file"]),
            str(entry["local_indices"]["file"]),
            str(entry["grid"]["order"]["file"]),
            str(entry["grid"]["starts"]["file"]),
        ]
        self._pack.release(names)

    # ------------------------------------------------------------------ save
    @classmethod
    def save(cls, path: "str | Path", engine, *, lsn: Optional[int] = None) -> "ArtifactStore":
        """Snapshot a live engine (graph + every cached artifact) to ``path``.

        ``engine`` is any object with the
        :meth:`repro.engine.QueryEngine.export_state` protocol.  The target
        directory is created if needed; an existing *store* directory is
        overwritten in place, but a non-empty directory that is not a store
        is refused rather than clobbered.  Only integer-labelled graphs can
        be snapshotted (the same restriction as the graph ``.npz`` format).

        ``lsn`` stamps the snapshot with the write-ahead-log sequence number
        it covers (see :mod:`repro.store.wal`): a replica warm-starting from
        this snapshot resumes WAL replay at ``lsn + 1``.  Omitted for
        snapshots taken outside the replication tier; readers of such
        snapshots see :attr:`lsn` ``== 0``.
        """
        path = Path(path)
        graph: SpatialGraph = engine.graph
        labels = graph.labels()
        if not all(isinstance(label, (int, np.integer)) for label in labels):
            raise StoreError(
                "ArtifactStore supports integer vertex labels only; "
                "relabel the graph before snapshotting"
            )
        cls._prepare_directory(path)

        blobs: Dict[str, np.ndarray] = {}

        def _blob(name: str, array: np.ndarray) -> Dict[str, object]:
            blobs[name] = np.ascontiguousarray(array)
            return array_entry(blobs[name], name)

        manifest: Dict[str, object] = manifest_header("engine")
        if lsn is not None:
            if not isinstance(lsn, int) or lsn < 0:
                raise StoreError(f"snapshot lsn must be a non-negative int, got {lsn!r}")
            manifest["lsn"] = lsn
        graph_arrays = graph.export_arrays()
        labels_array = np.asarray(labels, dtype=np.int64)
        graph_section: Dict[str, object] = {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "arrays": {
                name: _blob(f"graph_{name}", graph_arrays[name])
                for name in _GRAPH_ARRAYS
            },
        }
        if bool(
            (labels_array == np.arange(graph.num_vertices, dtype=np.int64)).all()
        ):
            # Dataset-generated graphs label vertices 0..n-1; recording the
            # fact instead of the array lets attach skip an O(n) tolist.
            graph_section["labels_identity"] = True
        else:
            graph_section["labels"] = _blob("graph_labels", labels_array)
        manifest["graph"] = graph_section

        state = engine.export_state()
        cores = state.get("cores")
        manifest["cores"] = None if cores is None else _blob("cores", cores)

        manifest["labellings"] = [
            {
                "k": int(k),
                "count": int(count),
                "labels": _blob(f"k{k}_labels", labels_array),
                "reps": _blob(f"k{k}_reps", reps),
            }
            for k, (labels_array, count, reps) in sorted(state.get("labellings", {}).items())
        ]

        bundle_entries = []
        for (k, representative), bundle in sorted(state.get("bundles", {}).items()):
            prefix = f"k{k}_r{representative}"
            if isinstance(bundle, dict):
                # A raw bundle_state() dict carried over from the previous
                # snapshot: the arrays are already in storage layout
                # (possibly compressed) — write them back byte-for-byte.
                grid_state = bundle["grid"]
                members = bundle["members"]
                coords = bundle["coords"]
                indptr = bundle["local_indptr"]
                indices = bundle["local_indices"]
                order = grid_state["order"]
                starts = grid_state["starts"]
            else:
                grid_state = bundle.grid.export_state()
                members = _narrow_ints(bundle.candidate_array)
                coords = _narrow_coords(bundle.candidate_coords)
                indptr = _narrow_ints(bundle.local_indptr)
                indices = _narrow_ints(bundle.local_indices)
                order = _narrow_ints(grid_state["order"])
                starts = _narrow_ints(grid_state["starts"])
            bundle_entries.append(
                {
                    "k": int(k),
                    "representative": int(representative),
                    "members": _blob(f"{prefix}_members", members),
                    "coords": _blob(f"{prefix}_coords", coords),
                    "local_indptr": _blob(f"{prefix}_indptr", indptr),
                    "local_indices": _blob(f"{prefix}_indices", indices),
                    "grid": {
                        "min_x": grid_state["min_x"],
                        "min_y": grid_state["min_y"],
                        "cell": grid_state["cell"],
                        "cols": grid_state["cols"],
                        "rows": grid_state["rows"],
                        "order": _blob(f"{prefix}_grid_order", order),
                        "starts": _blob(f"{prefix}_grid_starts", starts),
                    },
                }
            )
        manifest["bundles"] = bundle_entries

        # Uncompressed on purpose: members stay individually np.load-able,
        # and open() serves them as zero-copy views over one mmap.
        np.savez(path / PACK_NAME, **blobs)
        # The manifest is written last: a crash mid-save leaves a pack
        # without a manifest, which open() rejects outright instead of
        # half-loading.
        (path / "manifest.json").write_text(
            json.dumps(manifest, indent=1, sort_keys=False), encoding="utf-8"
        )
        return cls(path, manifest)

    @staticmethod
    def _prepare_directory(path: Path) -> None:
        """Create (or safely clear) the snapshot directory."""
        if path.exists() and not path.is_dir():
            raise StoreError(f"{path} exists and is not a directory")
        if path.is_dir():
            entries = list(path.iterdir())
            if entries and not (path / "manifest.json").is_file():
                raise StoreError(
                    f"refusing to overwrite {path}: it is non-empty and not an "
                    "artifact store"
                )
            # Overwriting an existing store: drop its manifest and pack so a
            # smaller snapshot leaves nothing stale behind.
            for entry in entries:
                if entry.name in ("manifest.json", PACK_NAME):
                    entry.unlink()
        else:
            path.mkdir(parents=True)

    # ------------------------------------------------------------------ info
    @property
    def version(self) -> int:
        """Manifest format version of the opened snapshot."""
        return int(self.manifest.get("version", STORE_VERSION))

    @property
    def lsn(self) -> int:
        """WAL sequence number this snapshot covers (0 when not stamped).

        Snapshots written by the replication tier's compaction path record
        the last WAL LSN folded into them; everything at or below this LSN
        is already part of the snapshot, and replay resumes at ``lsn + 1``.
        Snapshots from older builds or non-replicated flows carry no stamp
        and report 0 (replay, if any, starts from the beginning).
        """
        value = self.manifest.get("lsn", 0)
        return int(value) if isinstance(value, int) else 0

    def nbytes(self) -> int:
        """Total size of the snapshot's array pack on disk."""
        pack = self.path / PACK_NAME
        return pack.stat().st_size if pack.is_file() else 0

    def describe(self) -> Dict[str, object]:
        """Small summary of the snapshot (for CLI output and logs)."""
        graph_section = self.manifest.get("graph") or {}
        return {
            "path": str(self.path),
            "version": self.version,
            "vertices": graph_section.get("vertices"),
            "edges": graph_section.get("edges"),
            "has_cores": self.manifest.get("cores") is not None,
            "ks": [int(item["k"]) for item in self.manifest.get("labellings", [])],
            "bundles": len(self.manifest.get("bundles", [])),
            "bytes": self.nbytes(),
            "lsn": self.lsn,
        }
