"""Persist engine artifacts to disk and reopen them memory-mapped.

An :class:`ArtifactStore` snapshot is a directory of two files: a versioned
``manifest.json`` and one **uncompressed** ``arrays.npz`` pack holding every
array blob — the bound graph's CSR arrays and coordinates, the core-number
vector, every cached k-ĉore labelling, and every per-``(k, representative)``
:class:`~repro.core.base.CandidateArtifacts` bundle including its grid-index
state, so nothing is re-sorted at load time.  Uncompressed ``.npz`` is a
plain zip of ``.npy`` members, which buys the best of both worlds: any
member remains readable with stock ``numpy.load`` for debugging, yet
:meth:`open` maps the whole pack **once** and serves every array as a
read-only zero-copy view over the shared pages — opening a snapshot costs
one JSON parse, one ``mmap``, and a few hundred bytes of zip bookkeeping
regardless of how much artifact data it holds.  That is what makes
:meth:`repro.engine.QueryEngine.from_store` warm-start in milliseconds where
a cold build pays parsing, decomposition, labelling, and per-component index
construction.

The snapshot is never written through: graphs and engines attached to a
store copy-on-first-mutate (see
:meth:`repro.graph.SpatialGraph.update_location` and
:class:`repro.engine.IncrementalEngine`), so one snapshot can back any
number of concurrent processes — the mapped pages are shared by the
operating system.
"""

from __future__ import annotations

import io
import json
import mmap
import re
import struct
import zipfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import StoreError
from repro.geometry.grid import GridIndex
from repro.graph.spatial_graph import SpatialGraph
from repro.store.manifest import (
    STORE_VERSION,
    array_entry,
    check_array,
    check_manifest,
    manifest_header,
)

#: File name of the array pack inside a snapshot directory.
PACK_NAME = "arrays.npz"

#: Arrays of one graph snapshot, in manifest order.
_GRAPH_ARRAYS = ("indptr", "indices32", "indices64", "coords")

#: Fast-path matcher for the simple (non-structured) .npy header dicts numpy
#: writes for every array this library persists.  Anything it cannot match
#: falls back to numpy's own (slower, fully general) header parser.
_NPY_HEADER = re.compile(
    rb"\{'descr': '([^']+)', 'fortran_order': (True|False), "
    rb"'shape': \(([0-9, ]*)\), \}"
)


class _BlobPack:
    """Zero-copy read-only views over one uncompressed ``.npz`` pack.

    ``numpy.load`` would re-open, re-resolve, and re-parse per member; this
    reader maps the archive once and slices ``.npy`` members straight out of
    the map.  Only the layout ``numpy.savez`` itself produces is accepted:
    ZIP-stored (uncompressed) members in ``.npy`` format versions 1.0/2.0.
    """

    def __init__(self, path: Path) -> None:
        try:
            self._file = open(path, "rb")
        except OSError as error:
            raise StoreError(f"{path}: cannot open array pack: {error}") from None
        try:
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            with zipfile.ZipFile(self._file) as archive:
                infos = archive.infolist()
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            self._file.close()
            raise StoreError(f"{path}: array pack is corrupt: {error}") from None
        self._path = path
        self._members: Dict[str, Tuple[int, int]] = {}
        for info in infos:
            if info.compress_type != zipfile.ZIP_STORED:
                self._map.close()
                self._file.close()
                raise StoreError(
                    f"{path}: member {info.filename!r} is compressed; "
                    "snapshots are written uncompressed"
                )
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            self._members[name] = (info.header_offset, info.file_size)

    def array(self, name: str) -> np.ndarray:
        """Return the named member as a read-only view over the map."""
        member = self._members.get(name)
        if member is None:
            raise StoreError(f"{self._path}: missing blob {name!r}")
        header_offset, size = member
        try:
            # Skip the fixed zip local-file header (30 bytes) plus its
            # variable name/extra fields to reach the embedded .npy bytes.
            name_len, extra_len = struct.unpack_from(
                "<HH", self._map, header_offset + 26
            )
            start = header_offset + 30 + name_len + extra_len
            blob = memoryview(self._map)[start : start + size]
            shape, fortran, dtype, data_offset = self._parse_npy_header(name, blob)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            array = np.frombuffer(blob, dtype=dtype, count=count, offset=data_offset)
            return array.reshape(shape, order="F" if fortran else "C")
        except StoreError:
            raise
        except (ValueError, struct.error) as error:
            raise StoreError(
                f"{self._path}: blob {name!r} is corrupt: {error}"
            ) from None

    def _parse_npy_header(self, name: str, blob: memoryview):
        """Parse one member's ``.npy`` header: ``(shape, fortran, dtype, offset)``.

        The common simple-dtype header is matched with one regex (numpy's
        general parser costs an ``ast`` compile per array, which dominates a
        snapshot open); anything unusual falls back to numpy's own reader.
        """
        if bytes(blob[:6]) != b"\x93NUMPY":
            raise StoreError(f"{self._path}: blob {name!r} is not .npy data")
        major = blob[6]
        if major == 1:
            (header_len,) = struct.unpack_from("<H", blob, 8)
            data_offset = 10 + header_len
        elif major == 2:
            (header_len,) = struct.unpack_from("<I", blob, 8)
            data_offset = 12 + header_len
        else:
            raise StoreError(
                f"{self._path}: blob {name!r} uses unsupported .npy version {major}"
            )
        match = _NPY_HEADER.match(bytes(blob[data_offset - header_len : data_offset]).strip())
        if match is not None:
            descr, fortran, shape_text = match.groups()
            shape = tuple(
                int(part) for part in shape_text.decode().split(",") if part.strip()
            )
            return shape, fortran == b"True", np.dtype(descr.decode()), data_offset
        handle = io.BytesIO(blob)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        else:
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        return shape, fortran, dtype, handle.tell()


class ArtifactStore:
    """A reopened (or freshly written) on-disk snapshot of engine artifacts.

    Instances are created through :meth:`open` (attach an existing snapshot,
    memory-mapped) or :meth:`save` (write a new snapshot from a live engine).

    Examples
    --------
    >>> ArtifactStore.save("g.store", engine)                # doctest: +SKIP
    >>> engine = QueryEngine.from_store("g.store")           # doctest: +SKIP
    """

    def __init__(self, path: Path, manifest: Dict[str, object]) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self._pack: Optional[_BlobPack] = None

    # ------------------------------------------------------------------ open
    @classmethod
    def open(cls, path: "str | Path") -> "ArtifactStore":
        """Attach an existing snapshot directory, validating its manifest.

        The array pack is *not* touched here — it is mapped lazily on the
        first array access, once, by :meth:`graph` / :meth:`engine_state`.
        """
        path = Path(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.is_file():
            raise StoreError(f"{path} is not an artifact store (no manifest.json)")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise StoreError(f"{path}: manifest.json is unreadable: {error}") from None
        check_manifest(manifest, kind="engine", source=str(path))
        return cls(path, manifest)

    def _array(self, entry: Mapping[str, object]) -> np.ndarray:
        """Fetch one blob from the pack, verified against its descriptor."""
        if self._pack is None:
            self._pack = _BlobPack(self.path / PACK_NAME)
        array = self._pack.array(str(entry.get("file")))
        return check_array(array, dict(entry), source=str(self.path))

    def graph(self) -> SpatialGraph:
        """Reattach the snapshot's graph as zero-copy views over the map."""
        section = self.manifest.get("graph")
        if not isinstance(section, dict) or "arrays" not in section:
            raise StoreError(f"{self.path}: manifest has no graph section")
        entries = section["arrays"]
        try:
            arrays = {name: self._array(entries[name]) for name in _GRAPH_ARRAYS}
        except KeyError as missing:
            raise StoreError(
                f"{self.path}: manifest graph section lacks array {missing}"
            ) from None
        labels = self._array(section["labels"]).tolist() if "labels" in section else None
        return SpatialGraph.attach_arrays(arrays, labels=labels)

    def engine_state(self) -> Dict[str, object]:
        """Reattach the snapshot's engine caches, memory-mapped.

        Returns the dict shape :meth:`repro.engine.QueryEngine.install_state`
        consumes: the core-number vector (or ``None``), per-``k`` labellings
        as ``(labels, count, representatives)``, and per-``(k,
        representative)`` :class:`~repro.core.base.CandidateArtifacts`
        bundles whose grids are rebuilt from persisted state rather than
        re-sorted.
        """
        # Imported here, not at module level: repro.core.base sits above the
        # graph layer, which (via repro.graph.io's manifest sharing) imports
        # this package — a top-level import would be circular.
        from repro.core.base import CandidateArtifacts

        cores_entry = self.manifest.get("cores")
        cores = self._array(cores_entry) if cores_entry else None

        labellings: Dict[int, Tuple[np.ndarray, int, np.ndarray]] = {}
        for item in self.manifest.get("labellings", []):
            k = int(item["k"])
            labellings[k] = (
                self._array(item["labels"]),
                int(item["count"]),
                self._array(item["reps"]),
            )

        bundles: Dict[Tuple[int, int], object] = {}
        for item in self.manifest.get("bundles", []):
            k = int(item["k"])
            representative = int(item["representative"])
            members = self._array(item["members"])
            coords = self._array(item["coords"])
            grid_section = item["grid"]
            grid = GridIndex.from_state(
                coords,
                {
                    "min_x": grid_section["min_x"],
                    "min_y": grid_section["min_y"],
                    "cell": grid_section["cell"],
                    "cols": grid_section["cols"],
                    "rows": grid_section["rows"],
                    "order": self._array(grid_section["order"]),
                    "starts": self._array(grid_section["starts"]),
                },
            )
            candidate_list = members.tolist()
            bundles[(k, representative)] = CandidateArtifacts(
                candidates=frozenset(candidate_list),
                candidate_list=candidate_list,
                candidate_array=members,
                candidate_coords=coords,
                grid=grid,
                local_indptr=self._array(item["local_indptr"]),
                local_indices=self._array(item["local_indices"]),
            )
        return {"cores": cores, "labellings": labellings, "bundles": bundles}

    # ------------------------------------------------------------------ save
    @classmethod
    def save(cls, path: "str | Path", engine, *, lsn: Optional[int] = None) -> "ArtifactStore":
        """Snapshot a live engine (graph + every cached artifact) to ``path``.

        ``engine`` is any object with the
        :meth:`repro.engine.QueryEngine.export_state` protocol.  The target
        directory is created if needed; an existing *store* directory is
        overwritten in place, but a non-empty directory that is not a store
        is refused rather than clobbered.  Only integer-labelled graphs can
        be snapshotted (the same restriction as the graph ``.npz`` format).

        ``lsn`` stamps the snapshot with the write-ahead-log sequence number
        it covers (see :mod:`repro.store.wal`): a replica warm-starting from
        this snapshot resumes WAL replay at ``lsn + 1``.  Omitted for
        snapshots taken outside the replication tier; readers of such
        snapshots see :attr:`lsn` ``== 0``.
        """
        path = Path(path)
        graph: SpatialGraph = engine.graph
        labels = graph.labels()
        if not all(isinstance(label, (int, np.integer)) for label in labels):
            raise StoreError(
                "ArtifactStore supports integer vertex labels only; "
                "relabel the graph before snapshotting"
            )
        cls._prepare_directory(path)

        blobs: Dict[str, np.ndarray] = {}

        def _blob(name: str, array: np.ndarray) -> Dict[str, object]:
            blobs[name] = np.ascontiguousarray(array)
            return array_entry(blobs[name], name)

        manifest: Dict[str, object] = manifest_header("engine")
        if lsn is not None:
            if not isinstance(lsn, int) or lsn < 0:
                raise StoreError(f"snapshot lsn must be a non-negative int, got {lsn!r}")
            manifest["lsn"] = lsn
        graph_arrays = graph.export_arrays()
        labels_array = np.asarray(labels, dtype=np.int64)
        graph_section: Dict[str, object] = {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "arrays": {
                name: _blob(f"graph_{name}", graph_arrays[name])
                for name in _GRAPH_ARRAYS
            },
        }
        if bool(
            (labels_array == np.arange(graph.num_vertices, dtype=np.int64)).all()
        ):
            # Dataset-generated graphs label vertices 0..n-1; recording the
            # fact instead of the array lets attach skip an O(n) tolist.
            graph_section["labels_identity"] = True
        else:
            graph_section["labels"] = _blob("graph_labels", labels_array)
        manifest["graph"] = graph_section

        state = engine.export_state()
        cores = state.get("cores")
        manifest["cores"] = None if cores is None else _blob("cores", cores)

        manifest["labellings"] = [
            {
                "k": int(k),
                "count": int(count),
                "labels": _blob(f"k{k}_labels", labels_array),
                "reps": _blob(f"k{k}_reps", reps),
            }
            for k, (labels_array, count, reps) in sorted(state.get("labellings", {}).items())
        ]

        bundle_entries = []
        for (k, representative), bundle in sorted(state.get("bundles", {}).items()):
            prefix = f"k{k}_r{representative}"
            grid_state = bundle.grid.export_state()
            bundle_entries.append(
                {
                    "k": int(k),
                    "representative": int(representative),
                    "members": _blob(f"{prefix}_members", bundle.candidate_array),
                    "coords": _blob(f"{prefix}_coords", bundle.candidate_coords),
                    "local_indptr": _blob(f"{prefix}_indptr", bundle.local_indptr),
                    "local_indices": _blob(f"{prefix}_indices", bundle.local_indices),
                    "grid": {
                        "min_x": grid_state["min_x"],
                        "min_y": grid_state["min_y"],
                        "cell": grid_state["cell"],
                        "cols": grid_state["cols"],
                        "rows": grid_state["rows"],
                        "order": _blob(f"{prefix}_grid_order", grid_state["order"]),
                        "starts": _blob(f"{prefix}_grid_starts", grid_state["starts"]),
                    },
                }
            )
        manifest["bundles"] = bundle_entries

        # Uncompressed on purpose: members stay individually np.load-able,
        # and open() serves them as zero-copy views over one mmap.
        np.savez(path / PACK_NAME, **blobs)
        # The manifest is written last: a crash mid-save leaves a pack
        # without a manifest, which open() rejects outright instead of
        # half-loading.
        (path / "manifest.json").write_text(
            json.dumps(manifest, indent=1, sort_keys=False), encoding="utf-8"
        )
        return cls(path, manifest)

    @staticmethod
    def _prepare_directory(path: Path) -> None:
        """Create (or safely clear) the snapshot directory."""
        if path.exists() and not path.is_dir():
            raise StoreError(f"{path} exists and is not a directory")
        if path.is_dir():
            entries = list(path.iterdir())
            if entries and not (path / "manifest.json").is_file():
                raise StoreError(
                    f"refusing to overwrite {path}: it is non-empty and not an "
                    "artifact store"
                )
            # Overwriting an existing store: drop its manifest and pack so a
            # smaller snapshot leaves nothing stale behind.
            for entry in entries:
                if entry.name in ("manifest.json", PACK_NAME):
                    entry.unlink()
        else:
            path.mkdir(parents=True)

    # ------------------------------------------------------------------ info
    @property
    def version(self) -> int:
        """Manifest format version of the opened snapshot."""
        return int(self.manifest.get("version", STORE_VERSION))

    @property
    def lsn(self) -> int:
        """WAL sequence number this snapshot covers (0 when not stamped).

        Snapshots written by the replication tier's compaction path record
        the last WAL LSN folded into them; everything at or below this LSN
        is already part of the snapshot, and replay resumes at ``lsn + 1``.
        Snapshots from older builds or non-replicated flows carry no stamp
        and report 0 (replay, if any, starts from the beginning).
        """
        value = self.manifest.get("lsn", 0)
        return int(value) if isinstance(value, int) else 0

    def nbytes(self) -> int:
        """Total size of the snapshot's array pack on disk."""
        pack = self.path / PACK_NAME
        return pack.stat().st_size if pack.is_file() else 0

    def describe(self) -> Dict[str, object]:
        """Small summary of the snapshot (for CLI output and logs)."""
        graph_section = self.manifest.get("graph") or {}
        return {
            "path": str(self.path),
            "version": self.version,
            "vertices": graph_section.get("vertices"),
            "edges": graph_section.get("edges"),
            "has_cores": self.manifest.get("cores") is not None,
            "ks": [int(item["k"]) for item in self.manifest.get("labellings", [])],
            "bundles": len(self.manifest.get("bundles", [])),
            "bytes": self.nbytes(),
            "lsn": self.lsn,
        }
