"""High-level facade over the SAC search algorithms.

:class:`SACSearcher` binds a graph once, translates user-facing vertex labels
to internal indices, dispatches to any of the algorithms by name, and can
return ``None`` instead of raising when a query has no community — the
behaviour most applications want.

By default the searcher answers queries through a shared
:class:`repro.engine.QueryEngine`, so the per-graph preprocessing (core
decomposition, k-ĉore component labelling, per-component spatial indexes) is
paid once and reused across every query.  Results are bit-identical to the
per-query path; pass ``share_preprocessing=False`` to force the legacy
behaviour of rebuilding everything per query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.appacc import app_acc
from repro.core.appfast import app_fast
from repro.core.appinc import app_inc
from repro.core.exact import exact
from repro.core.exact_plus import exact_plus
from repro.core.result import SACResult
from repro.core.theta import theta_sac
from repro.exceptions import InvalidParameterError, NoCommunityError
from repro.graph.spatial_graph import Label, SpatialGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine import QueryEngine
    from repro.extensions.batch import BatchResult

#: Registry of algorithm names accepted by :meth:`SACSearcher.search`.
ALGORITHMS: Dict[str, Callable] = {
    "exact": exact,
    "exact+": exact_plus,
    "appinc": app_inc,
    "appfast": app_fast,
    "appacc": app_acc,
}


class SACSearcher:
    """Convenience facade for running SAC queries against one graph.

    Parameters
    ----------
    graph:
        The spatial graph to query.
    default_algorithm:
        Algorithm used when :meth:`search` is called without one.  The paper's
        guidance: ``exact+`` for moderate-size graphs, ``appfast`` or
        ``appacc`` for graphs with millions of vertices.
    share_preprocessing:
        When ``True`` (default) queries are served through a cached
        :class:`repro.engine.QueryEngine`; set to ``False`` to rebuild all
        per-graph state on every query (the seed behaviour — only useful for
        benchmarking the engine against it).

    Examples
    --------
    >>> searcher = SACSearcher(graph)                      # doctest: +SKIP
    >>> result = searcher.search("alice", k=4)             # doctest: +SKIP
    >>> sorted(searcher.member_labels(result))             # doctest: +SKIP
    ['alice', 'bob', 'carol', 'dave', 'eve']
    """

    def __init__(
        self,
        graph: SpatialGraph,
        default_algorithm: str = "appfast",
        *,
        share_preprocessing: bool = True,
    ) -> None:
        if default_algorithm not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {default_algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        self.graph = graph
        self.default_algorithm = default_algorithm
        self.share_preprocessing = share_preprocessing
        self._engine: Optional["QueryEngine"] = None

    @property
    def engine(self) -> "QueryEngine":
        """The lazily created query engine backing this searcher."""
        if self._engine is None:
            from repro.engine import QueryEngine

            self._engine = QueryEngine(self.graph)
        return self._engine

    def search(
        self,
        query: Label,
        k: int,
        *,
        algorithm: Optional[str] = None,
        missing_ok: bool = True,
        **params: float,
    ) -> Optional[SACResult]:
        """Run a SAC query.

        Parameters
        ----------
        query:
            User-facing label of the query vertex.
        k:
            Minimum-degree threshold.
        algorithm:
            One of ``"exact"``, ``"exact+"``, ``"appinc"``, ``"appfast"``,
            ``"appacc"``; defaults to the searcher's default.
        missing_ok:
            When ``True`` (default) return ``None`` if the query vertex is not
            part of any k-ĉore; when ``False`` propagate
            :class:`~repro.exceptions.NoCommunityError`.
        params:
            Extra algorithm parameters (``epsilon_f`` for AppFast,
            ``epsilon_a`` for AppAcc / Exact+).
        """
        name = algorithm or self.default_algorithm
        if name not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
            )
        index = self.graph.index_of(query)
        try:
            if self.share_preprocessing:
                return self.engine.search(index, k, algorithm=name, **params)
            return ALGORITHMS[name](self.graph, index, k, **params)
        except NoCommunityError:
            if missing_ok:
                return None
            raise

    def search_batch(
        self,
        queries,
        k: int,
        *,
        algorithm: Optional[str] = None,
        **params: float,
    ) -> "BatchResult":
        """Answer many queries (by label) in one batch.

        Returns a :class:`repro.extensions.BatchResult` with per-query
        results, the failed queries, and timing that separates the shared
        preprocessing from the per-query work.  With
        ``share_preprocessing=False`` each query rebuilds its own state (no
        sharing even within the batch), honouring the searcher's contract.
        """
        import time

        from repro.extensions.batch import BatchResult, BatchSACProcessor

        name = algorithm or self.default_algorithm
        if name not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
            )
        indices = [self.graph.index_of(label) for label in queries]
        if self.share_preprocessing:
            processor = BatchSACProcessor(
                self.graph,
                k,
                algorithm=name,
                algorithm_params=dict(params),
                engine=self.engine,
            )
            return processor.run(indices)

        start = time.perf_counter()
        batch = BatchResult()
        for index in indices:
            try:
                batch.results[index] = ALGORITHMS[name](self.graph, index, k, **params)
            except NoCommunityError:
                batch.failed.append(index)
        batch.elapsed_seconds = time.perf_counter() - start
        return batch

    def search_theta(
        self, query: Label, k: int, theta: float, *, missing_ok: bool = True
    ) -> Optional[SACResult]:
        """Run a θ-SAC query (community constrained to ``O(q, theta)``)."""
        index = self.graph.index_of(query)
        result = theta_sac(self.graph, index, k, theta, raise_on_empty=not missing_ok)
        return result

    def member_labels(self, result: SACResult) -> list:
        """Translate a result's member indices back to user-facing labels."""
        return [self.graph.label_of(v) for v in sorted(result.members)]
