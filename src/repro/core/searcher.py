"""High-level facade over the SAC search algorithms.

:class:`SACSearcher` binds a graph once, translates user-facing vertex labels
to internal indices, dispatches to any of the algorithms by name, and can
return ``None`` instead of raising when a query has no community — the
behaviour most applications want.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.appacc import app_acc
from repro.core.appfast import app_fast
from repro.core.appinc import app_inc
from repro.core.exact import exact
from repro.core.exact_plus import exact_plus
from repro.core.result import SACResult
from repro.core.theta import theta_sac
from repro.exceptions import InvalidParameterError, NoCommunityError
from repro.graph.spatial_graph import Label, SpatialGraph

#: Registry of algorithm names accepted by :meth:`SACSearcher.search`.
ALGORITHMS: Dict[str, Callable] = {
    "exact": exact,
    "exact+": exact_plus,
    "appinc": app_inc,
    "appfast": app_fast,
    "appacc": app_acc,
}


class SACSearcher:
    """Convenience facade for running SAC queries against one graph.

    Parameters
    ----------
    graph:
        The spatial graph to query.
    default_algorithm:
        Algorithm used when :meth:`search` is called without one.  The paper's
        guidance: ``exact+`` for moderate-size graphs, ``appfast`` or
        ``appacc`` for graphs with millions of vertices.

    Examples
    --------
    >>> searcher = SACSearcher(graph)                      # doctest: +SKIP
    >>> result = searcher.search("alice", k=4)             # doctest: +SKIP
    >>> sorted(searcher.member_labels(result))             # doctest: +SKIP
    ['alice', 'bob', 'carol', 'dave', 'eve']
    """

    def __init__(self, graph: SpatialGraph, default_algorithm: str = "appfast") -> None:
        if default_algorithm not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {default_algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        self.graph = graph
        self.default_algorithm = default_algorithm

    def search(
        self,
        query: Label,
        k: int,
        *,
        algorithm: Optional[str] = None,
        missing_ok: bool = True,
        **params: float,
    ) -> Optional[SACResult]:
        """Run a SAC query.

        Parameters
        ----------
        query:
            User-facing label of the query vertex.
        k:
            Minimum-degree threshold.
        algorithm:
            One of ``"exact"``, ``"exact+"``, ``"appinc"``, ``"appfast"``,
            ``"appacc"``; defaults to the searcher's default.
        missing_ok:
            When ``True`` (default) return ``None`` if the query vertex is not
            part of any k-ĉore; when ``False`` propagate
            :class:`~repro.exceptions.NoCommunityError`.
        params:
            Extra algorithm parameters (``epsilon_f`` for AppFast,
            ``epsilon_a`` for AppAcc / Exact+).
        """
        name = algorithm or self.default_algorithm
        if name not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
            )
        index = self.graph.index_of(query)
        try:
            return ALGORITHMS[name](self.graph, index, k, **params)
        except NoCommunityError:
            if missing_ok:
                return None
            raise

    def search_theta(
        self, query: Label, k: int, theta: float, *, missing_ok: bool = True
    ) -> Optional[SACResult]:
        """Run a θ-SAC query (community constrained to ``O(q, theta)``)."""
        index = self.graph.index_of(query)
        result = theta_sac(self.graph, index, k, theta, raise_on_empty=not missing_ok)
        return result

    def member_labels(self, result: SACResult) -> list:
        """Translate a result's member indices back to user-facing labels."""
        return [self.graph.label_of(v) for v in sorted(result.members)]
