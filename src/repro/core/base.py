"""Shared machinery for the SAC search algorithms.

Every algorithm in Section 4 repeats the same two ingredients:

1. the **candidate set** ``X`` — the k-ĉore of the graph containing the query
   vertex (any feasible solution is a subset of it), together with vertex
   distances from the query and a spatial index over the candidates;
2. the **feasibility probe** — given a circle ``O(p, r)``, restrict the
   candidates to the circle and ask whether a connected k-core containing the
   query survives.

:class:`QueryContext` packages both so the individual algorithm modules stay
small and focused on their search strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError, NoCommunityError, VertexNotFoundError
from repro.geometry.circle import Circle
from repro.geometry.grid import GridIndex
from repro.geometry.mec import minimum_enclosing_circle
from repro.geometry.point import Point
from repro.graph.spatial_graph import SpatialGraph
from repro.kcore.connected_core import (
    connected_k_core,
    connected_k_core_in_subset,
    csr_component_mask,
    csr_peel_mask,
)
from repro.kcore.decomposition import gather_neighbors


def validate_query(graph: SpatialGraph, query: int, k: int) -> None:
    """Validate the common ``(graph, query, k)`` arguments of SAC search."""
    if not isinstance(k, int) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if not 0 <= query < graph.num_vertices:
        raise VertexNotFoundError(query)


def nearest_neighbor_community(graph: SpatialGraph, query: int) -> Set[int]:
    """Return the k=1 community: the query vertex plus its nearest neighbour.

    Section 4.1: "When the input k=1, we can simply return the subgraph
    induced by q and its nearest neighbor."  The nearest neighbour is taken
    among the query's graph neighbours (the subgraph must be connected).
    """
    neighbors = graph.neighbors(query)
    if neighbors.shape[0] == 0:
        raise NoCommunityError(query, 1, "query vertex has no neighbours")
    best = min((graph.distance(query, int(v)), int(v)) for v in neighbors)
    return {query, best[1]}


def _induced_csr(graph: SpatialGraph, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of ``G[vertices]`` relabelled to positions in ``vertices``.

    ``vertices`` must be sorted and unique.  Neighbour lists stay sorted
    because the relabelling is monotone.
    """
    indptr, indices = graph.csr
    counts = indptr[vertices + 1] - indptr[vertices]
    neighbors = gather_neighbors(indptr, indices, vertices)
    owners = np.repeat(np.arange(vertices.size, dtype=np.int64), counts)
    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[vertices] = True
    inside = keep[neighbors]
    local_indices = np.searchsorted(vertices, neighbors[inside])
    local_counts = np.bincount(owners[inside], minlength=vertices.size)
    local_indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(local_counts, out=local_indptr[1:])
    return local_indptr, local_indices


@dataclass(frozen=True)
class CandidateArtifacts:
    """Cached per-component candidate-set artifacts.

    Everything about a k-ĉore component that does not depend on which of its
    vertices is the query: the member set, the members in ascending index
    order, their coordinate matrix, and a spatial grid index over them.
    Built once per ``(graph, k, component)`` by
    :class:`repro.engine.QueryEngine` and shared by every
    :class:`QueryContext` the engine hands out; the legacy single-query path
    builds a private instance per query.  All fields are shared, so callers
    must never mutate them; the one sanctioned writer is
    :meth:`repro.engine.IncrementalEngine.apply_checkin`, which patches
    ``candidate_coords`` rows through ``grid.move_point`` (the grid's backing
    array *is* ``candidate_coords``) so cached bundles track location
    updates without a rebuild.
    """

    candidates: FrozenSet[int]
    candidate_list: List[int]
    candidate_array: np.ndarray
    candidate_coords: np.ndarray
    grid: GridIndex
    #: CSR adjacency of the subgraph induced by the candidates, with vertices
    #: relabelled to their positions in ``candidate_array``.  Probes run
    #: entirely in this compact id space, so their cost scales with the
    #: component instead of the whole graph.
    local_indptr: np.ndarray
    local_indices: np.ndarray

    @classmethod
    def from_candidates(cls, graph: SpatialGraph, candidates: Set[int]) -> "CandidateArtifacts":
        """Build the artifacts for an explicit (non-empty) candidate set."""
        candidate_list = sorted(int(v) for v in candidates)
        candidate_array = np.asarray(candidate_list, dtype=np.int64)
        candidate_coords = graph.coordinates[candidate_array]
        local_indptr, local_indices = _induced_csr(graph, candidate_array)
        return cls(
            candidates=frozenset(candidate_list),
            candidate_list=candidate_list,
            candidate_array=candidate_array,
            candidate_coords=candidate_coords,
            grid=GridIndex(candidate_coords),
            local_indptr=local_indptr,
            local_indices=local_indices,
        )


class QueryContext:
    """Candidate set and feasibility probes for one ``(graph, query, k)`` query.

    Attributes
    ----------
    candidates:
        The vertex set of the k-ĉore containing the query (set ``X`` in the
        paper).  Empty queries raise :class:`NoCommunityError` at construction.
    distances:
        Mapping vertex -> Euclidean distance from the query vertex.

    When ``artifacts`` is supplied (by :class:`repro.engine.QueryEngine` or
    :meth:`fresh`), the expensive per-graph work — k-ĉore extraction and the
    grid index over the candidates — is reused and only the query-specific
    distance vector is computed.  The two construction paths produce
    bit-identical probe results.
    """

    def __init__(
        self,
        graph: SpatialGraph,
        query: int,
        k: int,
        *,
        artifacts: Optional[CandidateArtifacts] = None,
        distance_array: Optional[np.ndarray] = None,
    ) -> None:
        validate_query(graph, query, k)
        self.graph = graph
        self.query = query
        self.k = k
        self.feasibility_checks = 0

        if artifacts is None:
            candidates = connected_k_core(graph, query, k)
            if not candidates:
                raise NoCommunityError(query, k)
            artifacts = CandidateArtifacts.from_candidates(graph, candidates)
        elif query not in artifacts.candidates:
            raise NoCommunityError(query, k)
        self._artifacts = artifacts
        self.candidates: FrozenSet[int] = artifacts.candidates

        qx, qy = graph.position(query)
        self.query_point = Point(qx, qy)
        self._candidate_list = artifacts.candidate_list
        if distance_array is None:
            deltas = artifacts.candidate_coords - np.array([qx, qy])
            distance_array = np.hypot(deltas[:, 0], deltas[:, 1])
        elif distance_array.shape != (artifacts.candidate_array.size,):
            raise InvalidParameterError(
                "distance_array must hold one distance per candidate "
                f"({artifacts.candidate_array.size}), got shape {distance_array.shape}"
            )
        #: Distance from the query to each candidate, aligned with
        #: ``artifacts.candidate_array`` (ascending vertex index).  A caller
        #: supplying ``distance_array`` (the group executor of
        #: :mod:`repro.engine.plan`, which computes whole groups in one
        #: vectorised pass) must pass exactly what this constructor would
        #: compute — the bit-identity of every downstream probe rests on it.
        self.distance_array: np.ndarray = distance_array
        self._distances: Optional[Dict[int, float]] = None
        self._grid = artifacts.grid
        # Position of the query inside candidate_array (= its local CSR id).
        self._local_query = int(np.searchsorted(artifacts.candidate_array, query))

    @property
    def distances(self) -> Dict[int, float]:
        """Mapping vertex -> distance from the query (built lazily).

        The probe hot paths use :attr:`distance_array` directly; this dict
        view exists for the enumeration-style algorithms and external
        callers.
        """
        if self._distances is None:
            self._distances = {
                v: float(d) for v, d in zip(self._candidate_list, self.distance_array)
            }
        return self._distances

    @property
    def artifacts(self) -> CandidateArtifacts:
        """The (shareable) candidate-set artifacts backing this context."""
        return self._artifacts

    def fresh(self) -> "QueryContext":
        """Return a new context for the same query with a zeroed probe counter.

        Shares the candidate artifacts, so construction costs one distance
        vector; used when one algorithm runs another as a subroutine (e.g.
        ``AppAcc`` seeding itself with ``AppFast``) and the inner run must
        keep its own feasibility bookkeeping.
        """
        return QueryContext(self.graph, self.query, self.k, artifacts=self._artifacts)

    # ------------------------------------------------------------ candidates
    def sorted_by_distance(self) -> List[int]:
        """Candidate vertices sorted by ascending distance (ties by index)."""
        order = np.lexsort((self._artifacts.candidate_array, self.distance_array))
        return self._artifacts.candidate_array[order].tolist()

    def max_candidate_distance(self) -> float:
        """Largest distance from the query to any candidate vertex."""
        return float(self.distance_array.max())

    def member_distances(self, members: np.ndarray) -> np.ndarray:
        """Distances from the query to ``members`` (must all be candidates)."""
        positions = np.searchsorted(self._artifacts.candidate_array, members)
        return self.distance_array[positions]

    def knn_distance(self) -> float:
        """Distance of the k-th nearest candidate *neighbour* of the query.

        This is the lower bound ``l`` of Eq. (1): the query needs at least
        ``k`` of its own neighbours inside any feasible circle centred at it.
        """
        neighbors = np.asarray(self.graph.neighbors(self.query), dtype=np.int64)
        candidate_array = self._artifacts.candidate_array
        positions = np.searchsorted(candidate_array, neighbors)
        in_range = positions < candidate_array.size
        positions, neighbors = positions[in_range], neighbors[in_range]
        positions = positions[candidate_array[positions] == neighbors]
        neighbor_distances = np.sort(self.distance_array[positions])
        if neighbor_distances.size < self.k:
            # Cannot happen for a valid k-ĉore, but keep a safe fallback.
            return float(neighbor_distances[-1]) if neighbor_distances.size else 0.0
        return float(neighbor_distances[self.k - 1])

    def _candidates_in_circle(self, center_x: float, center_y: float, radius: float) -> np.ndarray:
        """Candidate vertex indices inside ``O((x, y), radius)`` as an int64 array.

        A tiny relative inflation of the radius keeps vertices that lie
        exactly on the circle boundary (the "fixed vertices" of an MCC)
        inside the result despite floating-point rounding.
        """
        inflated = radius + 1e-9 * max(1.0, radius)
        hits = self._grid.query_circle_array(center_x, center_y, inflated)
        return self._artifacts.candidate_array[hits]

    def vertices_in_circle(self, center_x: float, center_y: float, radius: float) -> List[int]:
        """Candidate vertices located inside the circle ``O((x, y), radius)``."""
        return self._candidates_in_circle(center_x, center_y, radius).tolist()

    def vertices_in_annulus(
        self, center_x: float, center_y: float, inner: float, outer: float
    ) -> List[int]:
        """Candidate vertices with distance to ``(x, y)`` in ``[inner, outer]``."""
        hits = self._grid.query_annulus_array(center_x, center_y, inner, outer)
        return self._artifacts.candidate_array[hits].tolist()

    # -------------------------------------------------------------- probing
    def community_members_in_circle(
        self, center_x: float, center_y: float, radius: float
    ) -> Optional[np.ndarray]:
        """Array-native probe: k-ĉore members inside ``O((x, y), radius)``.

        Identical decision and member set as :meth:`community_in_circle`, but
        returns a sorted int64 array and never materialises a Python set —
        the form the search loops consume.  The peel + BFS run on the
        component-local CSR, so a probe costs ``O(|candidates in circle|)``
        regardless of the size of the full graph.
        """
        self.feasibility_checks += 1
        if self.graph.distance_to_point(self.query, center_x, center_y) > radius + 1e-12:
            return None
        inflated = radius + 1e-9 * max(1.0, radius)
        inside = self._grid.query_circle_array(center_x, center_y, inflated)
        if inside.size < self.k + 1:
            return None
        artifacts = self._artifacts
        core = csr_peel_mask(
            artifacts.local_indptr, artifacts.local_indices, artifacts.candidate_array.size,
            inside, self.k,
        )
        if not core[self._local_query]:
            return None
        component = csr_component_mask(
            artifacts.local_indptr, artifacts.local_indices, core, self._local_query
        )
        return artifacts.candidate_array[np.flatnonzero(component)]

    def community_in_circle(
        self, center_x: float, center_y: float, radius: float
    ) -> Optional[Set[int]]:
        """Return the k-ĉore containing the query inside ``O((x, y), radius)``.

        Returns ``None`` when no feasible community exists in the circle,
        including when the query vertex itself falls outside the circle.
        """
        members = self.community_members_in_circle(center_x, center_y, radius)
        if members is None:
            return None
        return {int(v) for v in members}

    def community_in_subset(self, subset: Sequence[int]) -> Optional[Set[int]]:
        """Return the k-ĉore containing the query inside an arbitrary vertex subset.

        Subsets that lie within the candidate set (the common case — AppInc's
        prefixes, Exact's circle contents) are probed on the component-local
        CSR so the cost scales with the subset, not the whole graph; anything
        else falls back to the graph-wide peeling.
        """
        self.feasibility_checks += 1
        if isinstance(subset, np.ndarray):
            members = np.unique(subset.astype(np.int64, copy=False))
        else:
            members = np.unique(np.fromiter((int(v) for v in subset), dtype=np.int64))
        if members.size == 0:
            return None
        candidate_array = self._artifacts.candidate_array
        positions = np.searchsorted(candidate_array, members)
        in_candidates = (
            members[0] >= candidate_array[0]
            and members[-1] <= candidate_array[-1]
            and bool((candidate_array[np.minimum(positions, candidate_array.size - 1)] == members).all())
        )
        if not in_candidates:
            return connected_k_core_in_subset(self.graph, members, self.query, self.k)
        artifacts = self._artifacts
        core = csr_peel_mask(
            artifacts.local_indptr, artifacts.local_indices, candidate_array.size,
            positions, self.k,
        )
        if not core[self._local_query]:
            return None
        component = csr_component_mask(
            artifacts.local_indptr, artifacts.local_indices, core, self._local_query
        )
        return {int(v) for v in candidate_array[np.flatnonzero(component)]}

    # --------------------------------------------------------------- results
    def mcc_of(self, members) -> Circle:
        """Minimum covering circle of the locations of ``members``.

        Accepts any iterable of vertex indices (set or int64 array); the
        members are passed to the MEC in ascending index order so the result
        is deterministic regardless of the container.
        """
        if isinstance(members, np.ndarray):
            arr = np.sort(members.astype(np.int64, copy=False))
        else:
            arr = np.sort(np.fromiter((int(v) for v in members), dtype=np.int64))
        return minimum_enclosing_circle(self.graph.coordinates[arr])

    def make_result(
        self, algorithm: str, members: Set[int], stats: Optional[Dict[str, float]] = None
    ) -> SACResult:
        """Wrap a member set into an :class:`SACResult` with its MCC."""
        stats = dict(stats or {})
        stats.setdefault("feasibility_checks", self.feasibility_checks)
        stats.setdefault("candidate_set_size", len(self.candidates))
        return SACResult(
            algorithm=algorithm,
            query=self.query,
            k=self.k,
            members=frozenset(members),
            circle=self.mcc_of(members),
            stats=stats,
        )


def resolve_context(
    graph: SpatialGraph, query: int, k: int, context: Optional[QueryContext]
) -> QueryContext:
    """Return ``context`` when supplied (after a consistency check), else build one.

    Lets every SAC algorithm accept a pre-built context from
    :class:`repro.engine.QueryEngine` while keeping the legacy
    ``algorithm(graph, query, k)`` call bit-identical.
    """
    if context is None:
        return QueryContext(graph, query, k)
    if context.graph is not graph or context.query != query or context.k != k:
        raise InvalidParameterError(
            "supplied QueryContext was built for a different (graph, query, k)"
        )
    return context


def incremental_feasible_region(context: QueryContext) -> Tuple[Set[int], float]:
    """Find the smallest query-centred circle containing a feasible solution.

    Scans candidate vertices in ascending distance from the query, adding one
    vertex at a time, and probes feasibility whenever the cheap necessary
    condition (the query has at least ``k`` neighbours among the vertices
    added so far) holds.  Returns the feasible community found and the radius
    ``delta`` of the query-centred circle that contains it.

    This realises the incremental strategy of ``AppInc`` (Algorithm 2) and is
    also used by ``AppFast(0)`` as a reference in tests.
    """
    graph = context.graph
    query = context.query
    k = context.k
    ordered = np.asarray(context.sorted_by_distance(), dtype=np.int64)

    # Prefix bookkeeping, vectorised: probe at exactly the prefixes where the
    # query already has >= k neighbours and the candidate circle holds at
    # least k + 1 vertices (the cheap necessary conditions).
    query_neighbors = np.asarray(graph.neighbors(query), dtype=np.int64)
    is_neighbor = np.isin(ordered, query_neighbors)
    neighbor_counts = np.cumsum(is_neighbor)
    sizes = np.arange(1, ordered.size + 1)
    probe_at = np.flatnonzero((neighbor_counts >= k) & (sizes >= k + 1))

    for index in probe_at:
        prefix = ordered[: int(index) + 1]
        community = context.community_in_subset(prefix)
        if community is not None:
            delta = float(context.member_distances(ordered[index : index + 1])[0])
            return community, delta
    raise NoCommunityError(query, k, "no feasible solution in any query-centred circle")
