"""Shared machinery for the SAC search algorithms.

Every algorithm in Section 4 repeats the same two ingredients:

1. the **candidate set** ``X`` — the k-ĉore of the graph containing the query
   vertex (any feasible solution is a subset of it), together with vertex
   distances from the query and a spatial index over the candidates;
2. the **feasibility probe** — given a circle ``O(p, r)``, restrict the
   candidates to the circle and ask whether a connected k-core containing the
   query survives.

:class:`QueryContext` packages both so the individual algorithm modules stay
small and focused on their search strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError, NoCommunityError, VertexNotFoundError
from repro.geometry.circle import Circle
from repro.geometry.grid import GridIndex
from repro.geometry.mec import minimum_enclosing_circle
from repro.geometry.point import Point
from repro.graph.spatial_graph import SpatialGraph
from repro.kcore.connected_core import connected_k_core, connected_k_core_in_subset


def validate_query(graph: SpatialGraph, query: int, k: int) -> None:
    """Validate the common ``(graph, query, k)`` arguments of SAC search."""
    if not isinstance(k, int) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if not 0 <= query < graph.num_vertices:
        raise VertexNotFoundError(query)


def nearest_neighbor_community(graph: SpatialGraph, query: int) -> Set[int]:
    """Return the k=1 community: the query vertex plus its nearest neighbour.

    Section 4.1: "When the input k=1, we can simply return the subgraph
    induced by q and its nearest neighbor."  The nearest neighbour is taken
    among the query's graph neighbours (the subgraph must be connected).
    """
    neighbors = graph.neighbors(query)
    if neighbors.shape[0] == 0:
        raise NoCommunityError(query, 1, "query vertex has no neighbours")
    best = min((graph.distance(query, int(v)), int(v)) for v in neighbors)
    return {query, best[1]}


class QueryContext:
    """Candidate set and feasibility probes for one ``(graph, query, k)`` query.

    Attributes
    ----------
    candidates:
        The vertex set of the k-ĉore containing the query (set ``X`` in the
        paper).  Empty queries raise :class:`NoCommunityError` at construction.
    distances:
        Mapping vertex -> Euclidean distance from the query vertex.
    """

    def __init__(self, graph: SpatialGraph, query: int, k: int) -> None:
        validate_query(graph, query, k)
        self.graph = graph
        self.query = query
        self.k = k
        self.feasibility_checks = 0

        candidates = connected_k_core(graph, query, k)
        if not candidates:
            raise NoCommunityError(query, k)
        self.candidates: Set[int] = candidates

        qx, qy = graph.position(query)
        self.query_point = Point(qx, qy)
        coords = graph.coordinates
        self._candidate_list = sorted(candidates)
        candidate_coords = coords[self._candidate_list]
        deltas = candidate_coords - np.array([qx, qy])
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        self.distances: Dict[int, float] = {
            v: float(d) for v, d in zip(self._candidate_list, dists)
        }
        self._grid = GridIndex(candidate_coords)
        self._grid_to_vertex = self._candidate_list

    # ------------------------------------------------------------ candidates
    def sorted_by_distance(self) -> List[int]:
        """Candidate vertices sorted by ascending distance from the query."""
        return sorted(self.candidates, key=lambda v: (self.distances[v], v))

    def max_candidate_distance(self) -> float:
        """Largest distance from the query to any candidate vertex."""
        return max(self.distances.values())

    def knn_distance(self) -> float:
        """Distance of the k-th nearest candidate *neighbour* of the query.

        This is the lower bound ``l`` of Eq. (1): the query needs at least
        ``k`` of its own neighbours inside any feasible circle centred at it.
        """
        neighbor_distances = sorted(
            self.distances[int(v)]
            for v in self.graph.neighbors(self.query)
            if int(v) in self.candidates
        )
        if len(neighbor_distances) < self.k:
            # Cannot happen for a valid k-ĉore, but keep a safe fallback.
            return neighbor_distances[-1] if neighbor_distances else 0.0
        return neighbor_distances[self.k - 1]

    def vertices_in_circle(self, center_x: float, center_y: float, radius: float) -> List[int]:
        """Candidate vertices located inside the circle ``O((x, y), radius)``.

        A tiny relative inflation of the radius keeps vertices that lie
        exactly on the circle boundary (the "fixed vertices" of an MCC)
        inside the result despite floating-point rounding.
        """
        inflated = radius + 1e-9 * max(1.0, radius)
        hits = self._grid.query_circle(center_x, center_y, inflated)
        return [self._grid_to_vertex[i] for i in hits]

    def vertices_in_annulus(
        self, center_x: float, center_y: float, inner: float, outer: float
    ) -> List[int]:
        """Candidate vertices with distance to ``(x, y)`` in ``[inner, outer]``."""
        hits = self._grid.query_annulus(center_x, center_y, inner, outer)
        return [self._grid_to_vertex[i] for i in hits]

    # -------------------------------------------------------------- probing
    def community_in_circle(
        self, center_x: float, center_y: float, radius: float
    ) -> Optional[Set[int]]:
        """Return the k-ĉore containing the query inside ``O((x, y), radius)``.

        Returns ``None`` when no feasible community exists in the circle,
        including when the query vertex itself falls outside the circle.
        """
        self.feasibility_checks += 1
        if self.graph.distance_to_point(self.query, center_x, center_y) > radius + 1e-12:
            return None
        inside = self.vertices_in_circle(center_x, center_y, radius)
        if len(inside) < self.k + 1:
            return None
        return connected_k_core_in_subset(self.graph, inside, self.query, self.k)

    def community_in_subset(self, subset: Sequence[int]) -> Optional[Set[int]]:
        """Return the k-ĉore containing the query inside an arbitrary vertex subset."""
        self.feasibility_checks += 1
        return connected_k_core_in_subset(self.graph, subset, self.query, self.k)

    # --------------------------------------------------------------- results
    def mcc_of(self, members: Set[int]) -> Circle:
        """Minimum covering circle of the locations of ``members``."""
        coords = self.graph.coordinates
        points = [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        return minimum_enclosing_circle(points)

    def make_result(
        self, algorithm: str, members: Set[int], stats: Optional[Dict[str, float]] = None
    ) -> SACResult:
        """Wrap a member set into an :class:`SACResult` with its MCC."""
        stats = dict(stats or {})
        stats.setdefault("feasibility_checks", self.feasibility_checks)
        stats.setdefault("candidate_set_size", len(self.candidates))
        return SACResult(
            algorithm=algorithm,
            query=self.query,
            k=self.k,
            members=frozenset(members),
            circle=self.mcc_of(members),
            stats=stats,
        )


def incremental_feasible_region(context: QueryContext) -> Tuple[Set[int], float]:
    """Find the smallest query-centred circle containing a feasible solution.

    Scans candidate vertices in ascending distance from the query, adding one
    vertex at a time, and probes feasibility whenever the cheap necessary
    condition (the query has at least ``k`` neighbours among the vertices
    added so far) holds.  Returns the feasible community found and the radius
    ``delta`` of the query-centred circle that contains it.

    This realises the incremental strategy of ``AppInc`` (Algorithm 2) and is
    also used by ``AppFast(0)`` as a reference in tests.
    """
    graph = context.graph
    query = context.query
    k = context.k
    ordered = context.sorted_by_distance()
    query_neighbors = {int(v) for v in graph.neighbors(query)}

    included: Set[int] = set()
    neighbor_count = 0
    for index, vertex in enumerate(ordered):
        included.add(vertex)
        if vertex in query_neighbors:
            neighbor_count += 1
        if neighbor_count < k or len(included) < k + 1:
            continue
        community = context.community_in_subset(included)
        if community is not None:
            delta = context.distances[vertex]
            return community, delta
    raise NoCommunityError(query, k, "no feasible solution in any query-centred circle")
