"""Result object returned by every SAC search algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.geometry.circle import Circle


@dataclass(frozen=True)
class SACResult:
    """A spatial-aware community together with its covering circle.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result (``"exact"``,
        ``"appinc"``, ...).
    query:
        Internal index of the query vertex.
    k:
        Minimum-degree threshold the community satisfies.
    members:
        Frozen set of internal vertex indices forming the community.  Always
        contains ``query`` and induces a connected subgraph of minimum degree
        at least ``k``.
    circle:
        The minimum covering circle (MCC) of the members' locations.
    stats:
        Algorithm-specific bookkeeping (number of feasibility checks, binary
        search iterations, candidate-set sizes, ...), useful for the
        efficiency experiments.
    """

    algorithm: str
    query: int
    k: int
    members: FrozenSet[int]
    circle: Circle
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def radius(self) -> float:
        """Radius of the community's minimum covering circle."""
        return self.circle.radius

    @property
    def size(self) -> int:
        """Number of community members."""
        return len(self.members)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self.members

    def __len__(self) -> int:
        return len(self.members)

    def summary(self) -> Dict[str, float]:
        """Return a flat summary row (algorithm, size, radius)."""
        return {
            "algorithm": self.algorithm,
            "query": self.query,
            "k": self.k,
            "size": self.size,
            "radius": self.radius,
        }
