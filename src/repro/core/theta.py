"""θ-SAC search (Section 3).

θ-SAC search is a variant of ``Global`` with an explicit spatial constraint:
the returned community must lie entirely inside the circle ``O(q, theta)``
around the query vertex.  It is the baseline the paper uses to motivate SAC
search proper — choosing a good ``theta`` is hard, and the resulting circles
are 5–10× larger than those of ``Exact+`` (Figure 11).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import QueryContext, validate_query
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError, NoCommunityError
from repro.graph.spatial_graph import SpatialGraph
from repro.kcore.connected_core import connected_k_core_in_subset


def theta_sac(
    graph: SpatialGraph,
    query: int,
    k: int,
    theta: float,
    *,
    raise_on_empty: bool = False,
) -> Optional[SACResult]:
    """Return the k-ĉore containing the query within ``O(q, theta)``.

    Parameters
    ----------
    graph, query, k:
        As in :func:`repro.core.appinc.app_inc`.
    theta:
        Radius of the query-centred circle the community must fit in.
    raise_on_empty:
        When ``True``, raise :class:`NoCommunityError` instead of returning
        ``None`` if no community exists within the circle.

    Returns
    -------
    SACResult or None
        The community, or ``None`` when no feasible community fits inside
        ``O(q, theta)`` (the common case for small ``theta``; Figure 11(a)
        reports exactly this empty-answer rate).
    """
    validate_query(graph, query, k)
    if theta < 0:
        raise InvalidParameterError(f"theta must be non-negative, got {theta}")

    qx, qy = graph.position(query)
    inside = graph.vertices_within(qx, qy, theta)
    community = connected_k_core_in_subset(graph, inside, query, k)
    if community is None:
        if raise_on_empty:
            raise NoCommunityError(query, k, f"no community within theta={theta}")
        return None

    # Build a lightweight context only to reuse MCC/result packaging.
    from repro.geometry.mec import minimum_enclosing_circle

    coords = graph.coordinates
    circle = minimum_enclosing_circle(
        [(float(coords[v, 0]), float(coords[v, 1])) for v in community]
    )
    return SACResult(
        algorithm="theta-sac",
        query=query,
        k=k,
        members=frozenset(community),
        circle=circle,
        stats={"theta": theta, "vertices_in_theta_circle": len(inside)},
    )
