"""``AppInc`` — the 2-approximation algorithm (Section 4.2, Algorithm 2).

AppInc grows a candidate set outwards from the query vertex, one vertex at a
time in ascending distance order, and stops as soon as the candidate set
contains a feasible solution.  Lemma 4 shows that the MCC of the community
found this way has radius at most twice the optimal radius.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import (
    QueryContext,
    incremental_feasible_region,
    nearest_neighbor_community,
    resolve_context,
    validate_query,
)
from repro.core.result import SACResult
from repro.graph.spatial_graph import SpatialGraph
from repro.geometry.mec import minimum_enclosing_circle


def app_inc(
    graph: SpatialGraph,
    query: int,
    k: int,
    *,
    context: Optional[QueryContext] = None,
) -> SACResult:
    """Run AppInc and return the 2-approximate SAC.

    Parameters
    ----------
    graph:
        The spatial graph.
    query:
        Internal index of the query vertex.
    k:
        Minimum-degree threshold (``k >= 1``).
    context:
        Optional pre-built :class:`QueryContext` (e.g. from
        :class:`repro.engine.QueryEngine`); results are identical either way.

    Returns
    -------
    SACResult
        Community ``Φ`` whose MCC radius ``γ`` satisfies ``γ <= 2 * ropt``.
        The result's ``stats`` record ``delta`` (the radius of the smallest
        query-centred circle containing a feasible solution) and ``gamma``.

    Raises
    ------
    NoCommunityError
        If the query vertex does not belong to any k-ĉore.
    """
    validate_query(graph, query, k)
    if k == 1:
        members = nearest_neighbor_community(graph, query)
        coords = graph.coordinates
        circle = minimum_enclosing_circle(
            [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        )
        return SACResult(
            "appinc",
            query,
            k,
            frozenset(members),
            circle,
            {
                "delta": circle.diameter,
                "gamma": circle.radius,
                "feasibility_checks": 0,
                "candidate_set_size": len(members),
            },
        )

    context = resolve_context(graph, query, k, context)
    community, delta = incremental_feasible_region(context)
    result = context.make_result("appinc", community, {"delta": delta})
    result.stats["gamma"] = result.radius
    return result
