"""``Exact`` — the basic exact algorithm (Section 4.1, Algorithm 1).

By Lemma 1 (Elzinga & Hearn) the optimal community's MCC is determined by two
or three of its member vertices lying on the circle boundary ("fixed
vertices").  ``Exact`` therefore enumerates every triple of candidate
vertices in ascending order of their distance from the query, computes the
smallest circle covering the triple, and tests whether a feasible community
exists among the candidates inside that circle.  The enumeration stops early
once the outermost vertex of the triple lies farther than ``2 * r`` from the
query (no community within a circle of radius ``r`` can reach it).

The running time is ``O(m * n^3)``; the algorithm is only practical on small
candidate sets and serves as the ground truth for tests and the Figure 12
exact-algorithm comparison.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.base import (
    QueryContext,
    nearest_neighbor_community,
    resolve_context,
    validate_query,
)
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError
from repro.geometry.mec import minimum_covering_circle_of_triple, minimum_enclosing_circle
from repro.graph.spatial_graph import SpatialGraph


def exact(
    graph: SpatialGraph,
    query: int,
    k: int,
    *,
    max_candidates: Optional[int] = None,
    context: Optional[QueryContext] = None,
) -> SACResult:
    """Run the basic exact algorithm and return the optimal SAC.

    Parameters
    ----------
    graph, query, k:
        As in :func:`repro.core.appinc.app_inc`.
    max_candidates:
        Optional safety valve: raise :class:`InvalidParameterError` when the
        candidate k-ĉore exceeds this size instead of attempting an O(n^3)
        enumeration.  ``None`` (default) disables the check.
    context:
        Optional pre-built :class:`QueryContext` (e.g. from
        :class:`repro.engine.QueryEngine`); results are identical either way.

    Returns
    -------
    SACResult
        The community Ψ with the minimum covering circle of smallest radius
        among all feasible communities containing the query.
    """
    validate_query(graph, query, k)
    if k == 1:
        members = nearest_neighbor_community(graph, query)
        coords = graph.coordinates
        circle = minimum_enclosing_circle(
            [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        )
        return SACResult("exact", query, k, frozenset(members), circle, {})

    context = resolve_context(graph, query, k, context)
    if max_candidates is not None and len(context.candidates) > max_candidates:
        raise InvalidParameterError(
            f"candidate k-core has {len(context.candidates)} vertices, exceeding "
            f"max_candidates={max_candidates}; use exact_plus or an approximation algorithm"
        )

    ordered = context.sorted_by_distance()
    coords = graph.coordinates
    points = {v: (float(coords[v, 0]), float(coords[v, 1])) for v in ordered}

    # The full candidate set is always feasible, so initialise with it.
    best_members: Set[int] = set(context.candidates)
    best_radius = context.mcc_of(best_members).radius
    triples_examined = 0

    for i in range(2, len(ordered)):
        outer = ordered[i]
        # Early termination (Algorithm 1, line 13): every member of a
        # community inside a circle of radius best_radius lies within
        # 2 * best_radius of the query.
        if context.distances[outer] > 2.0 * best_radius + 1e-15:
            break
        for j in range(0, i - 1):
            for h in range(j + 1, i):
                triples_examined += 1
                circle = minimum_covering_circle_of_triple(
                    points[ordered[j]], points[ordered[h]], points[outer]
                )
                if circle.radius >= best_radius - 1e-15:
                    continue
                inside = context.vertices_in_circle(
                    circle.center.x, circle.center.y, circle.radius
                )
                community = context.community_in_subset(inside)
                if community is None:
                    continue
                mcc = context.mcc_of(community)
                if mcc.radius < best_radius:
                    best_radius = mcc.radius
                    best_members = community

    return context.make_result(
        "exact",
        best_members,
        {"triples_examined": triples_examined},
    )
