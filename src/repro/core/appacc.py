"""``AppAcc`` — the (1 + εA)-approximation algorithm (Section 4.4, Algorithm 4).

AppAcc approximates the *centre* of the optimal MCC instead of approximating
a query-centred radius.  Corollary 4 places the optimal centre inside
``O(q, gamma)``; the square bounding that circle is decomposed into a region
quadtree whose cell centres ("anchor points") are probed level by level.  For
every surviving anchor a binary search finds the smallest anchor-centred
radius that still contains a feasible solution.  Two pruning rules (distance
to the query, and recorded infeasible radii) drop whole subtrees.  With cell
width ``beta = delta * epsilon_a / (sqrt(2) * (2 + epsilon_a))`` and binary
search tolerance ``alpha' = delta * epsilon_a / 4`` the returned community's
MCC radius is within ``(1 + epsilon_a)`` of optimal (Lemma 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.appfast import app_fast
from repro.core.base import (
    QueryContext,
    nearest_neighbor_community,
    resolve_context,
    validate_query,
)
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError
from repro.geometry.mec import minimum_enclosing_circle
from repro.geometry.quadtree import QuadtreeNode, RegionQuadtree
from repro.graph.spatial_graph import SpatialGraph

_SQRT2_OVER_2 = math.sqrt(2.0) / 2.0


@dataclass
class AppAccState:
    """Internal state shared between AppAcc and Exact+.

    Exact+ re-uses AppAcc's traversal: it needs the best community found, the
    surviving anchor points of the last quadtree level, the final cell width,
    and the candidate set restricted to ``O(q, 2 * gamma)``.
    """

    community: Set[int]
    radius: float
    delta: float
    gamma: float
    final_beta: float
    surviving_anchors: List[Tuple[float, float]] = field(default_factory=list)
    candidates_near_query: Set[int] = field(default_factory=set)
    anchors_probed: int = 0
    anchors_pruned: int = 0


def app_acc(
    graph: SpatialGraph,
    query: int,
    k: int,
    epsilon_a: float = 0.5,
    *,
    context: Optional[QueryContext] = None,
) -> SACResult:
    """Run AppAcc and return the (1 + εA)-approximate SAC.

    Parameters
    ----------
    graph, query, k:
        As in :func:`repro.core.appinc.app_inc`.
    epsilon_a:
        Accuracy parameter in ``(0, 1)``.  Smaller values probe more anchor
        points and produce tighter circles.
    context:
        Optional pre-built :class:`QueryContext` (e.g. from
        :class:`repro.engine.QueryEngine`); results are identical either way.

    Returns
    -------
    SACResult
        Community ``Γ`` whose MCC radius is at most ``(1 + εA) * ropt``.
        Stats record ``delta``, ``gamma``, the number of anchors probed and
        pruned, and the final anchor-cell width.
    """
    if not 0.0 < epsilon_a < 1.0:
        raise InvalidParameterError(f"epsilon_a must be in (0, 1), got {epsilon_a}")
    validate_query(graph, query, k)
    if k == 1:
        members = nearest_neighbor_community(graph, query)
        coords = graph.coordinates
        circle = minimum_enclosing_circle(
            [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        )
        return SACResult("appacc", query, k, frozenset(members), circle, {"epsilon_a": epsilon_a})

    context = resolve_context(graph, query, k, context)
    state = run_app_acc(context, epsilon_a)
    result = context.make_result(
        "appacc",
        state.community,
        {
            "epsilon_a": epsilon_a,
            "delta": state.delta,
            "gamma": state.gamma,
            "anchors_probed": state.anchors_probed,
            "anchors_pruned": state.anchors_pruned,
            "final_beta": state.final_beta,
        },
    )
    return result


def run_app_acc(context: QueryContext, epsilon_a: float) -> AppAccState:
    """Execute the AppAcc search on an existing :class:`QueryContext`.

    Returns the full :class:`AppAccState` so that ``Exact+`` can reuse the
    anchor bookkeeping.  The best community in the state is guaranteed
    feasible and its MCC radius is within ``(1 + epsilon_a)`` of optimal.
    """
    graph = context.graph
    qx, qy = context.query_point.x, context.query_point.y

    # Step 1: AppFast with epsilon_f = 0 gives Phi, delta, and gamma.  The
    # inner run shares this context's candidate artifacts but keeps its own
    # probe counter, exactly like a standalone AppFast invocation.
    seed = app_fast(graph, context.query, context.k, epsilon_f=0.0, context=context.fresh())
    delta = float(seed.stats["delta"])
    gamma = float(seed.radius)
    best_community: Set[int] = set(seed.members)
    best_radius = gamma

    if gamma <= 0.0 or delta <= 0.0:
        # All community members share the query's location; the zero-radius
        # circle is already optimal.
        return AppAccState(
            community=best_community,
            radius=best_radius,
            delta=delta,
            gamma=gamma,
            final_beta=0.0,
            surviving_anchors=[(qx, qy)],
            candidates_near_query=set(best_community),
        )

    # By Corollary 2 the optimal solution lies in O(q, 2 * gamma).
    candidates_near_query = set(context.vertices_in_circle(qx, qy, 2.0 * gamma))

    min_beta = delta * epsilon_a / (math.sqrt(2.0) * (2.0 + epsilon_a))
    alpha_prime = delta * epsilon_a / 4.0

    tree = RegionQuadtree(qx, qy, 2.0 * gamma)
    state = AppAccState(
        community=best_community,
        radius=best_radius,
        delta=delta,
        gamma=gamma,
        final_beta=gamma,
        candidates_near_query=candidates_near_query,
    )

    last_level_anchors: List[Tuple[float, float]] = [(qx, qy)]

    # The paper descends until leaf cells have width in (beta/2, beta] for the
    # target beta, so traversal continues while the level width is at least
    # half the target (the last processed level then has width <= min_beta).
    for level in tree.levels_until(min_beta / 2.0):
        beta = tree.current_width
        state.final_beta = beta
        slack = _SQRT2_OVER_2 * beta
        level_anchors: List[Tuple[float, float]] = []
        for node in level:
            px, py = node.anchor
            # Pruning1: the cell cannot contain the optimal centre.
            if graph.distance_to_point(context.query, px, py) > state.radius + slack:
                node.pruned = True
                state.anchors_pruned += 1
                continue
            probe_radius = state.radius + slack
            state.anchors_probed += 1
            feasible = context.community_members_in_circle(px, py, probe_radius)
            if feasible is None:
                # Pruning2: if the optimal centre were inside this cell, the
                # circle O(anchor, ropt + slack) ⊆ O(anchor, probe_radius)
                # would contain the optimal community, contradicting the
                # infeasibility just observed — so the whole subtree is safe
                # to drop.
                node.pruned = True
                state.anchors_pruned += 1
                continue
            level_anchors.append(node.anchor)
            members, anchored_radius = _binary_search_anchor(
                context, px, py, probe_radius, delta, alpha_prime, feasible
            )
            mcc = context.mcc_of(members)
            if mcc.radius < state.radius:
                state.radius = mcc.radius
                state.community = {int(v) for v in members}
        if level_anchors:
            last_level_anchors = level_anchors

    state.surviving_anchors = last_level_anchors
    return state


def _binary_search_anchor(
    context: QueryContext,
    px: float,
    py: float,
    upper: float,
    delta: float,
    alpha_prime: float,
    initial_members,
):
    """Binary search the smallest feasible radius centred at anchor ``(px, py)``.

    ``initial_members`` is the feasible community (int64 array) already found
    for the ``upper`` radius, so the search always has a fallback.  Returns
    the best community members and the (anchor-centred) radius.
    """
    lower = delta / 2.0  # Lemma 3: ropt >= delta / 2, no anchor can do better.
    best_members = initial_members
    best_radius = upper
    iterations = 0
    max_iterations = 64 + len(context.candidates)

    while upper - lower > alpha_prime and iterations < max_iterations:
        iterations += 1
        radius = (lower + upper) / 2.0
        members = context.community_members_in_circle(px, py, radius)
        if members is not None:
            best_members = members
            best_radius = radius
            upper = radius
        else:
            lower = radius
    return best_members, best_radius
