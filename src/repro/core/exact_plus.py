"""``Exact+`` — the advanced exact algorithm (Section 4.5, Algorithm 5).

Exact+ first runs ``AppAcc`` with a small ``epsilon_a``, which brackets the
optimal radius tightly (``rΓ / (1 + εA) ≤ ropt ≤ rΓ``) and localises the
optimal MCC centre to the surviving anchor cells.  Every fixed vertex of the
optimal MCC must then lie in a narrow annulus around one of the surviving
anchor points (Eqs. 7–8), so the expensive triple enumeration of ``Exact``
only needs to consider the (typically tiny) set ``F1`` of annulus vertices.
Lemma 2 further prunes the second fixed vertex (its distance from the first
must fall in ``[√3 · ropt, 2 · ropt]``).

In addition to triples, pairs of fixed vertices are enumerated explicitly so
that optimal MCCs determined by a diameter (two boundary vertices) are found
even when no third community member lies in the annulus.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

from repro.core.appacc import AppAccState, run_app_acc
from repro.core.base import (
    QueryContext,
    nearest_neighbor_community,
    resolve_context,
    validate_query,
)
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError
from repro.geometry.mec import (
    circle_from_two_points,
    minimum_covering_circle_of_triple,
    minimum_enclosing_circle,
)
from repro.graph.spatial_graph import SpatialGraph

_SQRT2_OVER_2 = math.sqrt(2.0) / 2.0
_SQRT3 = math.sqrt(3.0)


def exact_plus(
    graph: SpatialGraph,
    query: int,
    k: int,
    epsilon_a: float = 1e-4,
    *,
    context: Optional[QueryContext] = None,
) -> SACResult:
    """Run Exact+ and return the optimal SAC.

    Parameters
    ----------
    graph, query, k:
        As in :func:`repro.core.appinc.app_inc`.
    epsilon_a:
        Accuracy of the internal AppAcc run (paper default ``1e-4``).  Smaller
        values shrink the annular candidate region (fewer fixed-vertex
        candidates) at the cost of more anchor probes; the final answer is
        exact for any value in ``(0, 1)``.
    context:
        Optional pre-built :class:`QueryContext` (e.g. from
        :class:`repro.engine.QueryEngine`); results are identical either way.

    Returns
    -------
    SACResult
        The optimal community Ψ.  Stats record ``fixed_vertex_candidates``
        (|F1|), the number of triples examined, and the AppAcc bookkeeping.
    """
    if not 0.0 < epsilon_a < 1.0:
        raise InvalidParameterError(f"epsilon_a must be in (0, 1), got {epsilon_a}")
    validate_query(graph, query, k)
    if k == 1:
        members = nearest_neighbor_community(graph, query)
        coords = graph.coordinates
        circle = minimum_enclosing_circle(
            [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        )
        return SACResult("exact+", query, k, frozenset(members), circle, {})

    context = resolve_context(graph, query, k, context)
    state = run_app_acc(context, epsilon_a)

    best_members: Set[int] = set(state.community)
    best_radius = state.radius
    coords = graph.coordinates

    if best_radius <= 0.0:
        # The approximate solution is already a zero-radius (hence optimal) circle.
        return context.make_result(
            "exact+", best_members, {"fixed_vertex_candidates": 0, "triples_examined": 0}
        )

    # ---------------------------------------------------------------- F1 set
    # Candidate fixed vertices: members of S (the k-ĉore restricted to
    # O(q, 2*gamma)) whose distance to some surviving anchor point lies in
    # [r-, r+] (Eqs. 7 and 8).
    slack = _SQRT2_OVER_2 * state.final_beta
    r_plus = best_radius + slack
    r_minus = max(0.0, best_radius / (1.0 + epsilon_a) - slack)
    fixed_candidates: Set[int] = set()
    candidate_pool = state.candidates_near_query or set(context.candidates)
    for px, py in state.surviving_anchors:
        for vertex in context.vertices_in_annulus(px, py, r_minus, r_plus):
            if vertex in candidate_pool:
                fixed_candidates.add(vertex)

    f1 = sorted(fixed_candidates)
    points = {v: (float(coords[v, 0]), float(coords[v, 1])) for v in f1}
    triples_examined = 0

    # ------------------------------------------------- pair enumeration
    # Optimal MCCs determined by exactly two boundary vertices (a diameter).
    for a_index, v1 in enumerate(f1):
        p1 = points[v1]
        for v2 in f1[a_index + 1 :]:
            p2 = points[v2]
            circle = circle_from_two_points(p1, p2)
            if circle.radius >= best_radius - 1e-15:
                continue
            triples_examined += 1
            improved = _probe_circle(context, circle.center.x, circle.center.y, circle.radius)
            if improved is not None and improved[1] < best_radius:
                best_members, best_radius = improved[0], improved[1]

    # ------------------------------------------------ triple enumeration
    for v1 in f1:
        p1 = points[v1]
        # Lemma 2: the farthest pair of the optimal community spans
        # [sqrt(3) * ropt, 2 * ropt]; use the current bracket on ropt.
        lower_pair = _SQRT3 * r_minus
        upper_pair = 2.0 * best_radius
        f2 = [
            v
            for v in f1
            if v != v1 and lower_pair - 1e-12 <= _dist(points[v1], points[v]) <= upper_pair + 1e-12
        ]
        for v2 in f2:
            limit = _dist(p1, points[v2])
            f3 = [v for v in f1 if v not in (v1, v2) and _dist(p1, points[v]) <= limit + 1e-12]
            for v3 in f3:
                triples_examined += 1
                circle = minimum_covering_circle_of_triple(p1, points[v2], points[v3])
                if circle.radius >= best_radius - 1e-15:
                    continue
                improved = _probe_circle(
                    context, circle.center.x, circle.center.y, circle.radius
                )
                if improved is not None and improved[1] < best_radius:
                    best_members, best_radius = improved[0], improved[1]

    stats = {
        "fixed_vertex_candidates": len(f1),
        "triples_examined": triples_examined,
        "epsilon_a": epsilon_a,
        "anchors_probed": state.anchors_probed,
        "anchors_pruned": state.anchors_pruned,
        "appacc_radius": state.radius,
    }
    return context.make_result("exact+", best_members, stats)


def _dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _probe_circle(
    context: QueryContext, center_x: float, center_y: float, radius: float
) -> Optional[Tuple[Set[int], float]]:
    """Probe a candidate circle and return ``(community, mcc_radius)`` if feasible."""
    members = context.community_members_in_circle(center_x, center_y, radius)
    if members is None:
        return None
    mcc = context.mcc_of(members)
    return {int(v) for v in members}, mcc.radius
