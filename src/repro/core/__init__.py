"""SAC search algorithms (the paper's core contribution).

Five algorithms from Section 4 of the paper, plus the θ-SAC variant used as a
baseline in Section 5.2.2:

================  ==================  =============================================
Algorithm         Approximation       Entry point
================  ==================  =============================================
``Exact``         1 (optimal)         :func:`~repro.core.exact.exact`
``AppInc``        2                   :func:`~repro.core.appinc.app_inc`
``AppFast``       2 + εF              :func:`~repro.core.appfast.app_fast`
``AppAcc``        1 + εA              :func:`~repro.core.appacc.app_acc`
``Exact+``        1 (optimal)         :func:`~repro.core.exact_plus.exact_plus`
``θ-SAC``         n/a (fixed circle)  :func:`~repro.core.theta.theta_sac`
================  ==================  =============================================

All algorithms share the same signature style — ``(graph, query, k, ...)`` —
and return a :class:`~repro.core.result.SACResult` describing the community,
its minimum covering circle, and bookkeeping statistics.  The
:class:`~repro.core.searcher.SACSearcher` facade dispatches by algorithm name
and handles label translation.
"""

from repro.core.appacc import app_acc
from repro.core.appfast import app_fast
from repro.core.appinc import app_inc
from repro.core.exact import exact
from repro.core.exact_plus import exact_plus
from repro.core.result import SACResult
from repro.core.searcher import ALGORITHMS, SACSearcher
from repro.core.theta import theta_sac

__all__ = [
    "SACResult",
    "exact",
    "exact_plus",
    "app_inc",
    "app_fast",
    "app_acc",
    "theta_sac",
    "SACSearcher",
    "ALGORITHMS",
]
