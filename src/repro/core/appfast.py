"""``AppFast`` — the (2 + εF)-approximation algorithm (Section 4.3, Algorithm 3).

Instead of growing the candidate circle vertex by vertex, AppFast binary
searches the radius ``delta`` of the smallest query-centred circle containing
a feasible solution.  The lower bound is the distance of the query's k-th
nearest candidate neighbour and the upper bound is the farthest candidate
(Eq. 1).  The binary search stops when the remaining gap drops below
``alpha = r * epsilon_f / (2 + epsilon_f)``, which yields the (2 + εF) bound
of Lemma 5; with ``epsilon_f = 0`` the search runs to convergence and returns
exactly the AppInc community.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.base import (
    QueryContext,
    nearest_neighbor_community,
    resolve_context,
    validate_query,
)
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError
from repro.geometry.mec import minimum_enclosing_circle
from repro.graph.spatial_graph import SpatialGraph

#: Absolute convergence tolerance used when ``epsilon_f == 0``; the binary
#: search also terminates as soon as the bracket contains no candidate
#: distance, so this only guards against floating-point stalls.
_ZERO_EPSILON_TOLERANCE = 1e-12


def app_fast(
    graph: SpatialGraph,
    query: int,
    k: int,
    epsilon_f: float = 0.5,
    *,
    context: Optional[QueryContext] = None,
) -> SACResult:
    """Run AppFast and return the (2 + εF)-approximate SAC.

    Parameters
    ----------
    graph, query, k:
        As in :func:`repro.core.appinc.app_inc`.
    epsilon_f:
        Non-negative slack εF.  Larger values stop the binary search earlier
        (faster, looser guarantee); ``0`` reproduces AppInc's answer.
    context:
        Optional pre-built :class:`QueryContext` (e.g. from
        :class:`repro.engine.QueryEngine`); results are identical either way.

    Returns
    -------
    SACResult
        Community ``Λ`` with MCC radius at most ``(2 + εF) * ropt``.  The
        stats record ``delta`` (final feasible query-centred radius),
        ``gamma`` (MCC radius), and ``binary_search_iterations``.
    """
    if epsilon_f < 0:
        raise InvalidParameterError(f"epsilon_f must be non-negative, got {epsilon_f}")
    validate_query(graph, query, k)
    if k == 1:
        members = nearest_neighbor_community(graph, query)
        coords = graph.coordinates
        circle = minimum_enclosing_circle(
            [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        )
        return SACResult("appfast", query, k, frozenset(members), circle, {"delta": circle.diameter})

    context = resolve_context(graph, query, k, context)
    members, delta, iterations = _binary_search_radius(context, epsilon_f)
    result = context.make_result(
        "appfast",
        {int(v) for v in members},
        {"delta": delta, "binary_search_iterations": iterations, "epsilon_f": epsilon_f},
    )
    result.stats["gamma"] = result.radius
    return result


def _binary_search_radius(context: QueryContext, epsilon_f: float):
    """Binary search the smallest feasible query-centred radius.

    Returns ``(members, delta, iterations)`` where ``members`` is the
    community as an int64 array and ``delta`` the radius of the query-centred
    circle known to contain it.  All bound updates are whole-array operations
    over the context's distance vector.
    """
    qx, qy = context.query_point.x, context.query_point.y
    distances = context.distance_array
    lower = context.knn_distance()
    upper = context.max_candidate_distance()

    # The full candidate set (the k-ĉore) is always feasible, so the initial
    # community and feasible radius are well defined.
    best_members = context.artifacts.candidate_array
    best_delta = upper
    iterations = 0

    # Quick exit: the lower bound itself may already be feasible.
    if upper <= lower:
        return best_members, best_delta, iterations

    while upper > lower + _ZERO_EPSILON_TOLERANCE:
        iterations += 1
        radius = (lower + upper) / 2.0
        alpha = radius * epsilon_f / (2.0 + epsilon_f) if epsilon_f > 0 else 0.0
        members = context.community_members_in_circle(qx, qy, radius)
        if members is not None:
            best_members = members
            best_delta = radius
            if radius - lower <= alpha:
                break
            # Shrink the upper bound to the farthest member actually used.
            upper = float(context.member_distances(members).max())
            best_delta = upper
        else:
            if upper - radius <= alpha:
                break
            # Grow the lower bound to the nearest candidate outside O(q, r):
            # the next feasible circle must include at least one more vertex.
            outside = distances[distances > radius]
            if outside.size == 0:
                break
            lower = float(outside.min())
        if iterations > 4 * (len(context.candidates) + 64):
            # Defensive guard; the bracket always shrinks over the discrete
            # set of candidate distances, so this should be unreachable.
            break
    return best_members, best_delta, iterations
