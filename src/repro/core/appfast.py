"""``AppFast`` — the (2 + εF)-approximation algorithm (Section 4.3, Algorithm 3).

Instead of growing the candidate circle vertex by vertex, AppFast binary
searches the radius ``delta`` of the smallest query-centred circle containing
a feasible solution.  The lower bound is the distance of the query's k-th
nearest candidate neighbour and the upper bound is the farthest candidate
(Eq. 1).  The binary search stops when the remaining gap drops below
``alpha = r * epsilon_f / (2 + epsilon_f)``, which yields the (2 + εF) bound
of Lemma 5; with ``epsilon_f = 0`` the search runs to convergence and returns
exactly the AppInc community.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.base import QueryContext, nearest_neighbor_community, validate_query
from repro.core.result import SACResult
from repro.exceptions import InvalidParameterError
from repro.geometry.mec import minimum_enclosing_circle
from repro.graph.spatial_graph import SpatialGraph

#: Absolute convergence tolerance used when ``epsilon_f == 0``; the binary
#: search also terminates as soon as the bracket contains no candidate
#: distance, so this only guards against floating-point stalls.
_ZERO_EPSILON_TOLERANCE = 1e-12


def app_fast(
    graph: SpatialGraph,
    query: int,
    k: int,
    epsilon_f: float = 0.5,
) -> SACResult:
    """Run AppFast and return the (2 + εF)-approximate SAC.

    Parameters
    ----------
    graph, query, k:
        As in :func:`repro.core.appinc.app_inc`.
    epsilon_f:
        Non-negative slack εF.  Larger values stop the binary search earlier
        (faster, looser guarantee); ``0`` reproduces AppInc's answer.

    Returns
    -------
    SACResult
        Community ``Λ`` with MCC radius at most ``(2 + εF) * ropt``.  The
        stats record ``delta`` (final feasible query-centred radius),
        ``gamma`` (MCC radius), and ``binary_search_iterations``.
    """
    if epsilon_f < 0:
        raise InvalidParameterError(f"epsilon_f must be non-negative, got {epsilon_f}")
    validate_query(graph, query, k)
    if k == 1:
        members = nearest_neighbor_community(graph, query)
        coords = graph.coordinates
        circle = minimum_enclosing_circle(
            [(float(coords[v, 0]), float(coords[v, 1])) for v in members]
        )
        return SACResult("appfast", query, k, frozenset(members), circle, {"delta": circle.diameter})

    context = QueryContext(graph, query, k)
    community, delta, iterations = _binary_search_radius(context, epsilon_f)
    result = context.make_result(
        "appfast",
        community,
        {"delta": delta, "binary_search_iterations": iterations, "epsilon_f": epsilon_f},
    )
    result.stats["gamma"] = result.radius
    return result


def _binary_search_radius(
    context: QueryContext, epsilon_f: float
) -> tuple[Set[int], float, int]:
    """Binary search the smallest feasible query-centred radius.

    Returns ``(community, delta, iterations)`` where ``delta`` is the radius
    of the query-centred circle known to contain ``community``.
    """
    qx, qy = context.query_point.x, context.query_point.y
    lower = context.knn_distance()
    upper = context.max_candidate_distance()

    # The full candidate set (the k-ĉore) is always feasible, so the initial
    # community and feasible radius are well defined.
    best_community: Set[int] = set(context.candidates)
    best_delta = upper
    iterations = 0

    # Quick exit: the lower bound itself may already be feasible.
    if upper <= lower:
        return best_community, best_delta, iterations

    while upper > lower + _ZERO_EPSILON_TOLERANCE:
        iterations += 1
        radius = (lower + upper) / 2.0
        alpha = radius * epsilon_f / (2.0 + epsilon_f) if epsilon_f > 0 else 0.0
        community = context.community_in_circle(qx, qy, radius)
        if community is not None:
            best_community = community
            best_delta = radius
            if radius - lower <= alpha:
                break
            # Shrink the upper bound to the farthest member actually used.
            upper = max(context.distances[v] for v in community)
            best_delta = upper
        else:
            if upper - radius <= alpha:
                break
            # Grow the lower bound to the nearest candidate outside O(q, r):
            # the next feasible circle must include at least one more vertex.
            outside = [
                context.distances[v]
                for v in context.candidates
                if context.distances[v] > radius
            ]
            if not outside:
                break
            lower = min(outside)
        if iterations > 4 * (len(context.candidates) + 64):
            # Defensive guard; the bracket always shrinks over the discrete
            # set of candidate distances, so this should be unreachable.
            break
    return best_community, best_delta, iterations
