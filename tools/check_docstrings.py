#!/usr/bin/env python
"""Enforce docstring presence on the public surface of ``src/repro``.

A stdlib-only stand-in for the ``pydocstyle``/``ruff D1xx`` presence rules
(D100 module, D101 class, D102 method, D103 function), so the check runs in
CI and locally without any extra dependency.  Rules:

* every module needs a module docstring;
* every public class, function, and method (name not starting with ``_``)
  needs a docstring;
* ``__init__`` and other dunders are exempt (their contract belongs to the
  class docstring), as are nested functions and anything underscored;
* a method may inherit silence only via ``@property``-less overrides —
  there is deliberately **no** override exemption, because readers meet the
  subclass first.

Exit status 0 when clean; 1 with a ``path:line: message`` listing otherwise.

Usage::

    python tools/check_docstrings.py [root ...]

Defaults to ``src/repro``, ``benchmarks``, and ``tools`` relative to the
repository root.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = [
    REPO_ROOT / "src" / "repro",
    REPO_ROOT / "benchmarks",
    REPO_ROOT / "tools",
]

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    """Public means no leading underscore; dunders are handled separately."""
    return not name.startswith("_")


def iter_missing(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, message)`` for every missing docstring in a module tree."""
    if ast.get_docstring(tree) is None:
        yield (1, "missing module docstring (D100)")
    for node in tree.body:
        if isinstance(node, FunctionNode) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                yield (node.lineno, f"missing docstring on function {node.name!r} (D103)")
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                yield (node.lineno, f"missing docstring on class {node.name!r} (D101)")
            for member in node.body:
                if not isinstance(member, FunctionNode):
                    continue
                if not _is_public(member.name):
                    continue
                if ast.get_docstring(member) is None:
                    yield (
                        member.lineno,
                        f"missing docstring on method {node.name}.{member.name} (D102)",
                    )


def check_paths(roots: List[Path]) -> List[str]:
    """Collect all violations under ``roots`` as ``path:line: message`` strings."""
    problems: List[str] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            relative = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
            for line, message in iter_missing(tree):
                problems.append(f"{relative}:{line}: {message}")
    return problems


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    roots = [Path(arg).resolve() for arg in argv] if argv else DEFAULT_ROOTS
    problems = check_paths(roots)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} public definition(s) without docstrings", file=sys.stderr)
        return 1
    print("docstring check: all public modules, classes, and functions documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
