#!/usr/bin/env python
"""Diff emitted ``BENCH_*.json`` benchmark results against committed baselines.

Every benchmark run writes a machine-readable ``BENCH_<benchmark>.json`` at
the repo root (see ``benchmarks/bench_common.write_result``); the blessed
reference copies live under ``benchmarks/baselines``.  This checker compares
the two with a **tolerance band**: structure must match exactly — sections,
row counts, and every string/int/bool cell (so dataset names, query counts,
and above all the ``identical`` bit-identity flags cannot silently change) —
while float cells (timings, queries/sec, speedups) only need to land within
a relative factor of the baseline, because absolute performance varies
across machines.

Exit status 0 when every baseline is matched; 1 with a
``file: section[row].key: message`` listing otherwise.

Usage::

    python tools/compare_bench.py [--tolerance 20] [baseline ...]

Defaults to every ``benchmarks/baselines/BENCH_*.json``, each compared
against the repo-root file of the same name.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES_DIR = REPO_ROOT / "benchmarks" / "baselines"


def _within_band(baseline: float, current: float, tolerance: float) -> bool:
    """Relative tolerance check handling zero and sign gracefully."""
    if baseline == current:
        return True
    if baseline == 0.0 or current == 0.0:
        # A measurement collapsing to (or appearing from) zero is a real
        # structural change, not machine noise.
        return False
    if (baseline < 0.0) != (current < 0.0):
        return False
    ratio = abs(current) / abs(baseline)
    return 1.0 / tolerance <= ratio <= tolerance


def _compare_cell(
    path: str, baseline: object, current: object, tolerance: float
) -> List[str]:
    """Compare one row cell; floats get the band, everything else is exact."""
    numeric = isinstance(baseline, (int, float)) and not isinstance(baseline, bool)
    numeric &= isinstance(current, (int, float)) and not isinstance(current, bool)
    if numeric and (isinstance(baseline, float) or isinstance(current, float)):
        if not _within_band(float(baseline), float(current), tolerance):
            return [
                f"{path}: {current!r} outside {tolerance}x tolerance band "
                f"of baseline {baseline!r}"
            ]
        return []
    if baseline != current:
        return [f"{path}: expected {baseline!r}, got {current!r}"]
    return []


def compare_payloads(
    name: str, baseline: Dict, current: Dict, tolerance: float
) -> List[str]:
    """Return a list of mismatch messages between two BENCH payloads."""
    problems: List[str] = []
    base_sections = baseline.get("sections", {})
    curr_sections = current.get("sections", {})
    for section, base_body in sorted(base_sections.items()):
        if section not in curr_sections:
            problems.append(f"{name}: section {section!r} missing from current run")
            continue
        base_rows = base_body.get("rows", [])
        curr_rows = curr_sections[section].get("rows", [])
        if len(base_rows) != len(curr_rows):
            problems.append(
                f"{name}: {section}: expected {len(base_rows)} rows, "
                f"got {len(curr_rows)}"
            )
            continue
        for index, (base_row, curr_row) in enumerate(zip(base_rows, curr_rows)):
            if set(base_row) != set(curr_row):
                problems.append(
                    f"{name}: {section}[{index}]: column mismatch "
                    f"({sorted(base_row)} vs {sorted(curr_row)})"
                )
                continue
            for key in sorted(base_row):
                problems.extend(
                    _compare_cell(
                        f"{name}: {section}[{index}].{key}",
                        base_row[key],
                        curr_row[key],
                        tolerance,
                    )
                )
        # Memory gate: the "extra" payload is otherwise free-form and
        # ignored, but a peak-RSS recording present in both the baseline
        # and the current run must stay within the band — a benchmark whose
        # memory high-water multiplies is a regression even when its
        # timings hold.
        base_rss = (base_body.get("extra") or {}).get("peak_rss_mb")
        curr_rss = (curr_sections[section].get("extra") or {}).get("peak_rss_mb")
        if base_rss is not None and curr_rss is not None:
            problems.extend(
                _compare_cell(
                    f"{name}: {section}.extra.peak_rss_mb",
                    float(base_rss),
                    float(curr_rss),
                    tolerance,
                )
            )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baselines",
        nargs="*",
        type=Path,
        help="baseline JSON files (default: benchmarks/baselines/BENCH_*.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=20.0,
        help="relative factor float cells may drift from the baseline",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 1.0:
        parser.error(f"--tolerance must be >= 1, got {args.tolerance}")

    baselines = args.baselines or sorted(BASELINES_DIR.glob("BENCH_*.json"))
    if not baselines:
        print("no baselines found under benchmarks/baselines", file=sys.stderr)
        return 1

    problems: List[str] = []
    for baseline_path in baselines:
        current_path = REPO_ROOT / baseline_path.name
        if not current_path.exists():
            problems.append(
                f"{baseline_path.name}: no current run at {current_path} "
                "(run the benchmark first)"
            )
            continue
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        current = json.loads(current_path.read_text(encoding="utf-8"))
        mismatches = compare_payloads(
            baseline_path.name, baseline, current, args.tolerance
        )
        problems.extend(mismatches)
        status = "OK" if not mismatches else f"{len(mismatches)} mismatch(es)"
        print(f"{baseline_path.name}: {status}")

    if problems:
        print(f"\n{len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
