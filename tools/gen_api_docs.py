#!/usr/bin/env python
"""Generate ``docs/api.md`` from the public surface of the serving stack.

A stdlib-only introspection tool: it imports the four layers an operator or
library user programs against — :mod:`repro.engine`, :mod:`repro.service`,
:mod:`repro.store`, and :mod:`repro.server` — and renders every ``__all__``
export (signatures from :mod:`inspect`, summaries from the docstrings the
docstring checker already enforces) into one reference page.  The page is
committed, not built on the fly, so it is readable on any code host; CI
keeps it honest by regenerating and diffing (the same pattern as the
docstring checker):

Usage::

    python tools/gen_api_docs.py            # rewrite docs/api.md
    python tools/gen_api_docs.py --check    # exit 1 if docs/api.md is stale

Output is deterministic: members are ordered by source position, and any
repr that embeds a memory address (function defaults, for instance) is
scrubbed.
"""

from __future__ import annotations

import argparse
import inspect
import re
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "docs" / "api.md"

#: The documented layers, in stack order (lowest first).
MODULES = [
    "repro.store",
    "repro.engine",
    "repro.service",
    "repro.server",
    "repro.replication",
]

HEADER = """\
# Public API reference

The programmable surface of the serving stack, layer by layer: the
[storage layer](architecture.md#the-storage-layer-snapshots-warm-starts-shared-memory)
(`repro.store`), the shared-preprocessing engines (`repro.engine`), the
[serving layer](architecture.md#the-serving-layer-batches-shards-cached-answers)
(`repro.service`), and the network daemon (`repro.server`, operated via
[docs/serving.md](serving.md)).

> **Generated file** — do not edit by hand.  Regenerate with
> `python tools/gen_api_docs.py`; CI fails when this page is stale.
"""

_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _clean(text: str) -> str:
    """Scrub memory addresses out of reprs so the output is deterministic."""
    return _ADDRESS.sub("", text)


def _summary(obj: object) -> str:
    """First docstring line — the one-sentence contract."""
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def _signature(obj: object) -> str:
    """Best-effort signature text (empty for C-level or data members)."""
    try:
        text = _clean(str(inspect.signature(obj)))
    except (TypeError, ValueError):
        return "(...)"
    # Bound-style rendering for members: the receiver adds no information.
    return re.sub(r"^\((self|cls)(, |(?=\)))", "(", text)


def _source_line(obj: object) -> int:
    """Source position for stable ordering; unknown positions sort last."""
    try:
        return inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):
        return 1 << 30


def _class_section(name: str, cls: type) -> List[str]:
    """Render one exported class: constructor, summary, own public members."""
    lines = [f"### class `{name}`", ""]
    bases = [
        f"`{base.__module__}.{base.__name__}`"
        for base in cls.__bases__
        if base is not object and base.__module__.startswith("repro")
    ]
    constructor = _signature(cls)
    lines.append(f"```python\n{name}{constructor}\n```")
    lines.append("")
    if bases:
        lines.append(f"*Extends {', '.join(bases)} — inherited members are listed there.*")
        lines.append("")
    summary = _summary(cls)
    if summary:
        lines.append(summary)
        lines.append("")

    members = []
    for attr_name, attr in vars(cls).items():
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            target = attr.fget
            kind = "property"
        elif isinstance(attr, (staticmethod, classmethod)):
            target = attr.__func__
            kind = "method"
        elif inspect.isfunction(attr):
            target = attr
            kind = "method"
        else:
            # Dataclass fields and other data attributes: the constructor
            # signature above already lists them.
            continue
        members.append((_source_line(target), attr_name, kind, target))
    members.sort()
    if members:
        lines.append("Members:")
        lines.append("")
        for _, attr_name, kind, target in members:
            if kind == "property":
                lines.append(f"- `{attr_name}` *(property)* — {_summary(target)}")
            else:
                lines.append(f"- `{attr_name}{_signature(target)}` — {_summary(target)}")
        lines.append("")
    return lines


def _function_section(name: str, func: object) -> List[str]:
    """Render one exported function."""
    return [
        f"### `{name}{_signature(func)}`",
        "",
        _summary(func) or "",
        "",
    ]


def _module_section(module_name: str) -> List[str]:
    """Render one module: summary paragraph plus every ``__all__`` export."""
    module = __import__(module_name, fromlist=["__all__"])
    lines = [f"## `{module_name}`", ""]
    doc = inspect.getdoc(module) or ""
    first_paragraph = doc.split("\n\n", 1)[0].strip()
    if first_paragraph:
        lines.append(first_paragraph)
        lines.append("")
    exports = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        exports.append((_source_line(obj), name, obj))
    exports.sort(key=lambda item: (item[0], item[1]))
    for _, name, obj in exports:
        if inspect.isclass(obj):
            lines.extend(_class_section(name, obj))
        elif inspect.isfunction(obj):
            lines.extend(_function_section(name, obj))
        else:
            lines.append(f"### `{name} = {_clean(repr(obj))}`")
            lines.append("")
            lines.append(f"Constant of `{module_name}`.")
            lines.append("")
    return lines


def generate() -> str:
    """Build the full page text."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    lines = [HEADER]
    for module_name in MODULES:
        lines.extend(_module_section(module_name))
    text = "\n".join(lines)
    return re.sub(r"\n{3,}", "\n\n", text).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="do not write; exit 1 if docs/api.md differs from a fresh render",
    )
    args = parser.parse_args(argv)
    text = generate()
    if args.check:
        current = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else ""
        if current != text:
            print(
                f"{OUTPUT.relative_to(REPO_ROOT)} is stale; "
                "run `python tools/gen_api_docs.py` and commit the result",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT.relative_to(REPO_ROOT)} is up to date")
        return 0
    OUTPUT.write_text(text, encoding="utf-8")
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
