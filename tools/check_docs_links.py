#!/usr/bin/env python
"""Check every internal link and anchor in the Markdown documentation.

A stdlib-only link checker over ``README.md`` and ``docs/*.md``: every
inline Markdown link ``[text](target)`` whose target is not an external URL
must point at a file that exists in the repository, and — when it carries a
``#fragment`` — at a heading that actually renders to that anchor under
GitHub's slug rules (lowercase, punctuation stripped, spaces to hyphens).
Docs rot silently when a heading is reworded or a page is renamed; this
check runs in CI and in the tier-1 suite (``tests/test_docs.py``) so a
broken cross-reference fails the build instead of a reader.

Exit status 0 when clean; 1 with a ``file:line: message`` listing otherwise.

Usage::

    python tools/check_docs_links.py [file ...]

Defaults to ``README.md`` plus every ``docs/*.md`` in the repository.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links; images share the syntax with a ``!`` prefix.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings (``#`` to ``######``).
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Fenced code blocks must not contribute headings or links.
_FENCE = re.compile(r"^\s*(```|~~~)")

#: Schemes that are out of scope for an offline checker.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _display(path: Path) -> Path:
    """Repo-relative rendering of a path; outside-repo paths stay absolute."""
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:  # files outside the repo (tests run on tmp dirs)
        return path


def default_files() -> List[Path]:
    """README plus the docs tree — every page the repository publishes."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def github_slug(heading: str) -> str:
    """Render one heading to its GitHub anchor slug.

    Lowercase, inline markup and punctuation stripped, spaces collapsed to
    single hyphens.  Word characters (including non-ASCII letters) and
    existing hyphens survive.
    """
    text = heading.strip().lower()
    # Inline code/emphasis markers render to nothing in the anchor.
    text = re.sub(r"[`*_]", "", text)
    # Markdown links in headings anchor on their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _iter_content_lines(text: str):
    """Yield ``(line_number, line)`` outside fenced code blocks."""
    fence: Optional[str] = None
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line)
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is None:
            yield number, line


def collect_anchors(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    """All heading anchors of one Markdown file (GitHub slug rules)."""
    resolved = path.resolve()
    if resolved in cache:
        return cache[resolved]
    anchors: Set[str] = set()
    counts: Dict[str, int] = {}
    for _, line in _iter_content_lines(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    cache[resolved] = anchors
    return anchors


def check_file(path: Path, cache: Dict[Path, Set[str]]) -> List[str]:
    """Return ``file:line: message`` problems for one Markdown file."""
    problems: List[str] = []
    relative = _display(path)
    for number, line in _iter_content_lines(path.read_text(encoding="utf-8")):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            if target.startswith("#"):
                target_path, fragment = path, target[1:]
            else:
                raw_path, _, fragment = target.partition("#")
                target_path = (path.parent / raw_path).resolve()
                if not target_path.exists():
                    problems.append(
                        f"{relative}:{number}: broken link: {raw_path!r} does not exist"
                    )
                    continue
            if fragment:
                if target_path.suffix != ".md" or target_path.is_dir():
                    continue  # anchors into non-Markdown targets are not checkable
                anchors = collect_anchors(target_path, cache)
                if fragment not in anchors:
                    problems.append(
                        f"{relative}:{number}: broken anchor: "
                        f"{target!r} (no heading slugs to {fragment!r})"
                    )
    return problems


def check_paths(paths: List[Path]) -> List[str]:
    """Check every file; returns the concatenated problem listing."""
    cache: Dict[Path, Set[str]] = {}
    problems: List[str] = []
    for path in paths:
        problems.extend(check_file(path, cache))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(arg).resolve() for arg in argv] if argv else default_files()
    problems = check_paths(paths)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"{len(problems)} broken link(s)/anchor(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(_display(path)) for path in paths)
    print(f"documentation links OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
