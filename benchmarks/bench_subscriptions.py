"""Standing-query push vs naive re-query-all on the Fig-13 replay.

Registers a population of standing SAC queries (10 000 in the full run)
against one incremental engine, replays the Figure-13 synthetic check-in
stream over the Brightkite stand-in, and measures the **push cost**: after
every mutation the :class:`repro.service.SubscriptionRegistry` probes one
version counter per distinct subscribed ``(k, rep)`` key and re-executes
only the dirty component's subscriptions, batched through the planner.

The contender is the **naive re-query-all** client a pub/sub surface
replaces: after every mutation, re-issue every standing query through
:meth:`repro.engine.QueryEngine.search` and diff the answers client-side.

Two contracts are *enforced* (non-zero exit on violation), in ``--quick``
CI mode and the full run alike:

* **speedup** — the per-mutation push cost beats naive re-query-all by at
  least 5x (the dirty-set + batching design target);
* **bit-identity** — after the whole replay, every subscription's folded
  state (snapshot + deltas) equals a fresh re-query of its vertex.

Results land in ``BENCH_bench_subscriptions.json`` (baseline under
``benchmarks/baselines``, diffed by ``tools/compare_bench.py``).

Run standalone::

    python benchmarks/bench_subscriptions.py            # 10k standing queries
    python benchmarks/bench_subscriptions.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.geosocial import CheckinGenerator, TravelProfile, brightkite_like
from repro.engine import IncrementalEngine
from repro.exceptions import NoCommunityError
from repro.service import SACService, SubscriptionRegistry

K = 4
EPS = {"epsilon_f": 0.5}
MIN_SPEEDUP = 5.0


def _build_service(num_vertices: int) -> SACService:
    graph = brightkite_like(num_vertices=num_vertices, seed=7)
    return SACService(engine=IncrementalEngine(graph.mutable_copy()))


def _eligible(engine) -> list:
    cores = engine.core_numbers()
    return [v for v in range(engine.graph.num_vertices) if cores[v] >= K]


def _checkin_stream(graph, users, steps: int) -> list:
    """The Figure-13 replay: the synthetic travel stream, time-ordered."""
    generator = CheckinGenerator(
        graph,
        TravelProfile(local_std=0.01, move_probability=0.1, move_distance_mean=0.25),
        seed=13,
    )
    checkins = generator.generate(users, checkins_per_user=8, duration_days=40.0)
    return checkins[:steps]


def run_push(service, standing, checkins) -> dict:
    """Replay the stream against the registry; cost = evaluate() only.

    The mutation apply itself is common to both contenders and excluded
    from both measurements.
    """
    registry = SubscriptionRegistry(service, backlog=1_000_000)
    engine = service.engine
    sub_ids = []
    register_started = time.perf_counter()
    for vertex in standing:
        sub, _ = registry.register(vertex, K, algorithm="appfast", params=EPS)
        sub_ids.append(sub.sub_id)
    register_seconds = time.perf_counter() - register_started

    push_seconds = 0.0
    for checkin in checkins:
        engine.apply_checkin(checkin.user, checkin.x, checkin.y)
        started = time.perf_counter()
        registry.evaluate()
        push_seconds += time.perf_counter() - started

    # Bit-identity: every subscription's registry-held state equals a fresh
    # re-query at the final engine state.
    graph = service.graph
    mismatches = 0
    for vertex, sub_id in zip(standing, sub_ids):
        snapshot = registry.snapshot(sub_id)
        try:
            result = engine.search(vertex, K, algorithm="appfast", **EPS)
            expected = {
                "found": True,
                "members": [graph.label_of(v) for v in sorted(result.members)],
                "radius": result.circle.radius,
            }
        except NoCommunityError:
            expected = {"found": False, "members": [], "radius": None}
        held = {
            "found": snapshot["found"],
            "members": snapshot["members"],
            "radius": snapshot["radius"],
        }
        if held != expected:
            mismatches += 1

    stats = registry.stats
    return {
        "push_seconds": push_seconds,
        "per_step_ms": push_seconds / len(checkins) * 1000.0,
        "register_seconds": register_seconds,
        "mismatches": mismatches,
        "deltas_queued": stats.deltas_queued,
        "suppressed": stats.suppressed,
        "groups_executed": stats.groups_executed,
        "subscriptions_evaluated": stats.subscriptions_evaluated,
    }


def run_naive(service, standing, checkins) -> dict:
    """Re-query every standing query after every mutation, diff client-side."""
    engine = service.engine
    graph = service.graph

    def answer(vertex):
        try:
            result = engine.search(vertex, K, algorithm="appfast", **EPS)
        except NoCommunityError:
            return None
        return (frozenset(result.members), result.circle.radius)

    previous = {}
    started_all = time.perf_counter()
    for index, vertex in enumerate(standing):
        previous[index] = answer(vertex)
    prime_seconds = time.perf_counter() - started_all

    naive_seconds = 0.0
    deltas = 0
    for checkin in checkins:
        engine.apply_checkin(checkin.user, checkin.x, checkin.y)
        started = time.perf_counter()
        for index, vertex in enumerate(standing):
            fresh = answer(vertex)
            if fresh != previous[index]:  # the client-side diff
                deltas += 1
                previous[index] = fresh
        naive_seconds += time.perf_counter() - started
    return {
        "naive_seconds": naive_seconds,
        "per_step_ms": naive_seconds / len(checkins) * 1000.0,
        "prime_seconds": prime_seconds,
        "deltas_observed": deltas,
    }


def main(argv=None) -> int:
    """Run both contenders, write the table, enforce the two contracts."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale (fewer standing queries and mutations)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_vertices, num_standing, push_steps, naive_steps = 300, 600, 10, 2
    else:
        num_vertices, num_standing, push_steps, naive_steps = 1_200, 10_000, 40, 3

    base = _build_service(num_vertices)
    eligible = _eligible(base.engine)
    base.close()
    # The standing population watches ~10 subscriptions per distinct vertex
    # (many clients tracking the same users), the fan-in the registry's
    # dedupe + shared candidate fetch is built for; the quick scale keeps
    # the full run's ratio so its speedup is representative.
    watched = eligible[: max(1, num_standing // 10)]
    standing = [watched[i % len(watched)] for i in range(num_standing)]
    # Mobile users are the subscribed population: every mutation lands in a
    # component someone is watching, as in the Fig-13 tracked-user replay.
    users = eligible[: min(len(eligible), 300)]

    push_service = _build_service(num_vertices)
    push_trace = _checkin_stream(push_service.graph, users, push_steps)
    push = run_push(push_service, standing, push_trace)
    push_service.close()

    naive_service = _build_service(num_vertices)
    # The naive contender replays a prefix of the same stream: its per-step
    # cost is flat in the number of mutations (every step re-queries all),
    # so a short prefix prices it fairly without hour-long runs.
    naive_trace = _checkin_stream(naive_service.graph, users, naive_steps)
    naive = run_naive(naive_service, standing, naive_trace)
    naive_service.close()

    speedup = naive["per_step_ms"] / max(push["per_step_ms"], 1e-9)
    row = {
        "standing_queries": num_standing,
        "push_mutations": len(push_trace),
        "naive_mutations": len(naive_trace),
        "push_step_ms": round(push["per_step_ms"], 3),
        "naive_step_ms": round(naive["per_step_ms"], 3),
        "speedup": round(speedup, 2),
        "meets_5x": speedup >= MIN_SPEEDUP,
        "bit_identical": push["mismatches"] == 0,
    }
    write_result(
        "subscription_push_vs_requery",
        f"Standing-query push vs naive re-query-all "
        f"({num_standing} subscriptions, Fig-13 replay)",
        [row],
        extra={"push": push, "naive": naive},
    )

    failures = []
    if push["mismatches"]:
        failures.append(
            f"bit-identity: {push['mismatches']} subscriptions diverged "
            "from the re-query oracle"
        )
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x design target"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
