"""Figure 14 — effect of εA on Exact+.

Two panels:

* (a) Exact+ query time as εA sweeps over {1e-6 ... 1e-3} (plus the larger
  values used in the sensitivity discussion);
* (b) the size of the candidate fixed-vertex set |F1| as a function of εA —
  fewer vertices are pruned as εA grows.
"""

from __future__ import annotations

import time

import pytest

from bench_common import write_result
from repro.core.exact_plus import exact_plus
from repro.exceptions import NoCommunityError

#: The paper sweeps epsilon_A over {1e-6 ... 1e-3}.  The two smallest values
#: make the pure-Python anchor traversal take minutes per query on unlucky
#: queries (many co-optimal centres keep the surviving anchor region large),
#: so the default harness sweep starts at 1e-4; set REPRO_BENCH_FULL_FIG14=1
#: to run the paper's full range.
import os

if os.environ.get("REPRO_BENCH_FULL_FIG14"):
    EPSILON_VALUES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
else:
    EPSILON_VALUES = (1e-4, 1e-3, 1e-2)
K_DEFAULT = 4


@pytest.mark.benchmark(group="fig14")
def test_fig14_exact_plus_epsilon_sweep(benchmark, datasets, workloads):
    """Figure 14: Exact+ running time and ratio as epsilon_a sweeps."""
    def run():
        rows = []
        for name in ("brightkite", "gowalla"):
            graph = datasets[name]
            queries = workloads[name][:4]
            for epsilon_a in EPSILON_VALUES:
                elapsed = 0.0
                f1_sizes = []
                radii = []
                answered = 0
                for query in queries:
                    start = time.perf_counter()
                    try:
                        result = exact_plus(graph, query, K_DEFAULT, epsilon_a=epsilon_a)
                    except NoCommunityError:
                        continue
                    elapsed += time.perf_counter() - start
                    answered += 1
                    f1_sizes.append(result.stats["fixed_vertex_candidates"])
                    radii.append(result.radius)
                if answered == 0:
                    continue
                rows.append(
                    {
                        "dataset": name,
                        "epsilon_a": epsilon_a,
                        "avg_time_s": elapsed / answered,
                        "avg_f1_size": sum(f1_sizes) / len(f1_sizes),
                        "avg_radius": sum(radii) / len(radii),
                        "queries": answered,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig14_exact_plus", "Figure 14: Exact+ runtime and |F1| vs epsilon_A", rows)

    assert rows
    for name in ("brightkite", "gowalla"):
        series = sorted(
            (row for row in rows if row["dataset"] == name), key=lambda row: row["epsilon_a"]
        )
        if len(series) < 2:
            continue
        # |F1| grows (weakly) with epsilon_A: larger epsilon -> wider annulus
        # -> fewer vertices pruned (paper Figure 14(b)).  Half-a-vertex slack
        # absorbs per-query traversal differences.
        assert series[0]["avg_f1_size"] <= series[-1]["avg_f1_size"] + 0.5
        # The returned radius is the exact optimum regardless of epsilon_A.
        radii = [row["avg_radius"] for row in series]
        assert max(radii) - min(radii) <= 1e-6 * max(1.0, max(radii))
