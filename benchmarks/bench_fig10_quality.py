"""Figure 10 — spatial cohesiveness of SAC search versus CS/CD baselines.

Compares the average MCC radius and average pairwise member distance
(``distPr``) of the communities returned by

* the non-spatial community-search baselines ``Global`` and ``Local``,
* the spatial community-detection baseline ``GeoModu`` with decay mu = 1, 2,
* the SAC search algorithms (``Exact+``, ``AppInc``, ``AppFast``, ``AppAcc``).

Expected shape (paper Figure 10): Global ≫ Local ≫ GeoModu > SAC methods,
with Exact+ the tightest.  Absolute factors differ from the paper (different
data), but the ordering must hold.
"""

from __future__ import annotations

import pytest

from bench_common import QUALITY_DATASETS, write_result
from repro.baselines.geo_modularity import GeoModularityDetector, geo_modularity_community
from repro.baselines.global_search import global_search
from repro.baselines.local_search import local_search
from repro.core.appacc import app_acc
from repro.core.appfast import app_fast
from repro.core.appinc import app_inc
from repro.core.exact_plus import exact_plus
from repro.exceptions import NoCommunityError
from repro.metrics.spatial import average_pairwise_distance

K_DEFAULT = 4


def _evaluate(graph, queries, method):
    radii, dists = [], []
    for query in queries:
        try:
            result = method(graph, query)
        except NoCommunityError:
            continue
        if result is None:
            continue
        radii.append(result.radius)
        dists.append(average_pairwise_distance(graph, result.members))
    if not radii:
        return None
    return sum(radii) / len(radii), sum(dists) / len(dists), len(radii)


@pytest.mark.benchmark(group="fig10")
def test_fig10_quality_comparison(benchmark, datasets, workloads):
    """Figure 10: community quality (radius, distPr) of SAC vs the baselines."""
    def run():
        rows = []
        for name in QUALITY_DATASETS:
            graph = datasets[name]
            queries = workloads[name]
            detectors = {
                1: GeoModularityDetector(graph, mu=1.0, seed=0),
                2: GeoModularityDetector(graph, mu=2.0, seed=0),
            }
            methods = {
                "global": lambda g, q: global_search(g, q, K_DEFAULT),
                "local": lambda g, q: local_search(g, q, K_DEFAULT),
                "geomodu(1)": lambda g, q: geo_modularity_community(g, q, detector=detectors[1]),
                "geomodu(2)": lambda g, q: geo_modularity_community(g, q, detector=detectors[2]),
                "appinc": lambda g, q: app_inc(g, q, K_DEFAULT),
                "appfast(0.5)": lambda g, q: app_fast(g, q, K_DEFAULT, 0.5),
                "appacc(0.5)": lambda g, q: app_acc(g, q, K_DEFAULT, 0.5),
                "exact+": lambda g, q: exact_plus(g, q, K_DEFAULT, epsilon_a=1e-2),
            }
            for method_name, method in methods.items():
                stats = _evaluate(graph, queries, method)
                if stats is None:
                    continue
                radius, dist_pr, answered = stats
                rows.append(
                    {
                        "dataset": name,
                        "method": method_name,
                        "radius": radius,
                        "distPr": dist_pr,
                        "queries": answered,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig10_quality", "Figure 10: radius and distPr per retrieval method", rows)

    # Shape assertions per dataset: SAC search is spatially tighter than the
    # non-spatial CS baselines, and Exact+ is the tightest SAC variant.
    for name in QUALITY_DATASETS:
        by_method = {row["method"]: row for row in rows if row["dataset"] == name}
        if not by_method:
            continue
        assert by_method["exact+"]["radius"] <= by_method["global"]["radius"]
        assert by_method["exact+"]["radius"] <= by_method["local"]["radius"]
        assert by_method["exact+"]["radius"] <= by_method["appinc"]["radius"] + 1e-12
        assert by_method["exact+"]["radius"] <= by_method["appfast(0.5)"]["radius"] + 1e-12
        assert by_method["exact+"]["radius"] <= by_method["appacc(0.5)"]["radius"] + 1e-12
        # Global, which ignores locations entirely, sprawls the most among CS methods.
        assert by_method["global"]["radius"] >= by_method["local"]["radius"] - 1e-12
