"""Ablation — design choices called out in DESIGN.md §6.

Two micro-benchmarks that justify the substrate choices:

* the uniform grid index versus a linear scan for circular range queries
  (DESIGN.md choice 2) — the grid should win clearly at dataset scale;
* the array-based k-ĉore feasibility probe versus a naive dict-of-sets
  implementation (stand-in for the "no networkx in the hot path" choice 1).
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np
import pytest

from bench_common import write_result
from repro.experiments.timing import Timer
from repro.geometry.grid import GridIndex
from repro.kcore.connected_core import connected_k_core_in_subset


def _linear_scan(coords: np.ndarray, x: float, y: float, radius: float):
    deltas = coords - np.array([x, y])
    distances = np.hypot(deltas[:, 0], deltas[:, 1])
    return np.nonzero(distances <= radius)[0]


def _dict_based_k_core(adjacency, subset, query, k):
    """Reference dict-of-sets peeling, mimicking a networkx-style implementation."""
    alive = set(subset)
    degree = {v: len(adjacency[v] & alive) for v in alive}
    queue = deque(v for v, d in degree.items() if d < k)
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        alive.discard(v)
        for w in adjacency[v]:
            if w in alive:
                degree[w] -= 1
                if degree[w] < k:
                    queue.append(w)
    if query not in alive:
        return None
    seen = {query}
    frontier = deque([query])
    while frontier:
        v = frontier.popleft()
        for w in adjacency[v]:
            if w in alive and w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid_vs_linear_scan(benchmark, datasets):
    """Time grid-index circular range queries against a linear coordinate scan."""
    graph = datasets["foursquare"]
    coords = graph.coordinates
    grid = GridIndex(coords)
    rng = np.random.default_rng(3)
    probes = [(float(x), float(y)) for x, y in rng.uniform(0.2, 0.8, size=(200, 2))]
    radius = 0.02

    def run():
        with Timer() as grid_timer:
            grid_hits = sum(len(grid.query_circle(x, y, radius)) for x, y in probes)
        with Timer() as scan_timer:
            scan_hits = sum(len(_linear_scan(coords, x, y, radius)) for x, y in probes)
        return [
            {
                "method": "grid index",
                "total_hits": grid_hits,
                "time_s": grid_timer.elapsed,
            },
            {
                "method": "linear scan (numpy)",
                "total_hits": scan_hits,
                "time_s": scan_timer.elapsed,
            },
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("ablation_grid_index", "Ablation: grid index vs linear scan (200 range queries)", rows)
    # Both must agree on the number of results; the grid should not be slower
    # by more than a small factor (it is usually much faster per query once
    # the numpy scan cost grows with n).
    assert rows[0]["total_hits"] == rows[1]["total_hits"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_feasibility_probe(benchmark, datasets):
    """Time the CSR mask-peeling probe against a set-based reimplementation."""
    graph = datasets["brightkite"]
    adjacency = [set(int(w) for w in graph.neighbors(v)) for v in range(graph.num_vertices)]
    rng = np.random.default_rng(5)
    subsets = []
    for _ in range(30):
        center = int(rng.integers(0, graph.num_vertices))
        x, y = graph.position(center)
        subsets.append((center, graph.vertices_within(x, y, 0.05)))

    def run():
        with Timer() as library_timer:
            library_found = sum(
                1
                for query, subset in subsets
                if connected_k_core_in_subset(graph, subset, query, 4) is not None
            )
        with Timer() as dict_timer:
            dict_found = sum(
                1
                for query, subset in subsets
                if _dict_based_k_core(adjacency, subset, query, 4) is not None
            )
        return [
            {"method": "repro.kcore probe", "feasible": library_found, "time_s": library_timer.elapsed},
            {"method": "dict-of-sets probe", "feasible": dict_found, "time_s": dict_timer.elapsed},
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_feasibility_probe",
        "Ablation: k-core feasibility probe implementations (30 probes)",
        rows,
    )
    assert rows[0]["feasible"] == rows[1]["feasible"]
