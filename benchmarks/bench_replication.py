"""Replicated serving tier benchmark: bit-identity and bounded staleness.

Boots the full replication tier in-process — one WAL-writing
:class:`repro.server.SACServer`, two :class:`repro.replication.ReplicaServer`
daemons warm-started from the same snapshot, and a
:class:`repro.replication.Coordinator` routing reads round-robin — then
drives interleaved query/mutation traffic through the coordinator and holds
it to the tier's two contracts:

* **bit-identity** (``max_staleness_lsn = 0``): every answer served by any
  backend must equal, member-for-member, what a single-writer serial replay
  of the same mutation trace produces.  The oracle is a private
  :class:`repro.service.SACService` applying the identical records in order.
* **bounded staleness** (``max_staleness_lsn = k``): with mutations fired
  without waiting for replica catch-up, the ``X-Staleness-LSN`` header on
  every proxied read must never exceed ``k`` — lagging replicas are skipped
  or the read falls back to the writer, but a stale answer never escapes
  the bound.

Queries use the ``appfast`` rung (``epsilon_f = 0.5``) over core-eligible
vertices; the exact rung's post-mutation blow-ups would swamp the
measurement without exercising any extra replication machinery.

Both contracts are *enforced*: any mismatch or bound violation exits
non-zero, in ``--quick`` CI mode and in the full run alike.  Results land
in ``BENCH_bench_replication.json`` (baseline under ``benchmarks/baselines``,
diffed by ``tools/compare_bench.py``).

Run standalone::

    python benchmarks/bench_replication.py            # full trace
    python benchmarks/bench_replication.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.geosocial import brightkite_like
from repro.engine import IncrementalEngine
from repro.replication import (
    CoordinatorConfig,
    ReplicaServer,
    start_coordinator_in_thread,
)
from repro.server import SACClient, ServerConfig, start_in_thread
from repro.service import SACService

K = 4
EPS = {"epsilon_f": 0.5}
NUM_REPLICAS = 2
#: Deterministic check-in destinations, cycled over the mutation trace.
COORDS = ((0.99, 0.99), (0.02, 0.98), (0.5, 0.5), (0.97, 0.03), (0.25, 0.75))


def _build_snapshot(root: Path) -> tuple[str, list[int]]:
    """Materialise the shared snapshot; return its path and eligible labels."""
    graph = brightkite_like(num_vertices=300, seed=7)
    builder = SACService(engine=IncrementalEngine(graph.mutable_copy()))
    cores = builder.engine.core_numbers()
    eligible = [
        graph.label_of(v) for v in range(graph.num_vertices) if cores[v] >= K
    ]
    store = root / "store"
    builder.save(str(store))
    builder.close()
    return str(store), eligible


class _Tier:
    """Writer + replicas + coordinator over one snapshot, context-managed."""

    def __init__(self, store: str, wal_dir: str, max_staleness_lsn: int):
        self.writer = start_in_thread(
            SACService.open(str(store)),
            ServerConfig(
                port=0,
                max_linger_ms=2.0,
                wal_dir=str(wal_dir),
                snapshot_path=str(store),
            ),
        )
        writer_url = f"http://127.0.0.1:{self.writer.port}"
        self.replicas = [
            start_in_thread(
                SACService.open(str(store)),
                ServerConfig(port=0, max_linger_ms=2.0, wal_dir=str(wal_dir)),
                server_factory=lambda svc, cfg: ReplicaServer(
                    svc, cfg, writer_url=writer_url, poll_interval_ms=5.0
                ),
            )
            for _ in range(NUM_REPLICAS)
        ]
        self.coordinator = start_coordinator_in_thread(
            CoordinatorConfig(
                port=0,
                writer=f"127.0.0.1:{self.writer.port}",
                replicas=tuple(
                    f"127.0.0.1:{h.port}" for h in self.replicas
                ),
                max_staleness_lsn=max_staleness_lsn,
                health_interval_ms=50.0,
            )
        )
        self.client = SACClient("127.0.0.1", self.coordinator.port)

    def wait_applied(self, lsn: int, timeout: float = 30.0) -> None:
        deadline = time.perf_counter() + timeout
        for handle in self.replicas:
            while handle.server.applied_lsn < lsn:
                if time.perf_counter() > deadline:
                    raise RuntimeError(
                        f"replica stuck at {handle.server.applied_lsn} < {lsn}"
                    )
                time.sleep(0.002)

    def close(self) -> None:
        self.client.close()
        self.coordinator.stop()
        for handle in self.replicas:
            handle.stop()
        self.writer.stop()


class _Oracle:
    """Single-writer serial replay of the same trace — the ground truth."""

    def __init__(self, store: str):
        self.service = SACService.open(str(store))

    def apply(self, record: dict) -> None:
        self.service.apply_record(dict(record))

    def answer(self, vertex: int) -> dict:
        try:
            result = self.service.search(vertex, K, algorithm="appfast", **EPS)
        except Exception:
            return {"found": False}
        return {
            "found": True,
            "members": sorted(result.members),
            "radius": result.circle.radius,
        }

    def close(self) -> None:
        self.service.close()


def _mutation_trace(eligible: list[int], count: int) -> list[dict]:
    """``count`` check-ins cycling the eligible vertices over fixed coords."""
    return [
        {
            "op": "checkin",
            "user": eligible[i % len(eligible)],
            "x": COORDS[i % len(COORDS)][0],
            "y": COORDS[i % len(COORDS)][1],
        }
        for i in range(count)
    ]


def _query_once(client: SACClient, vertex: int) -> tuple[dict, int, float]:
    start = time.perf_counter()
    payload = client.query(vertex, k=K, params=EPS)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    staleness = int(client.last_headers.get("x-staleness-lsn", "0"))
    return payload, staleness, elapsed_ms


def _matches(payload: dict, expected: dict) -> bool:
    if payload.get("found") != expected["found"]:
        return False
    if not expected["found"]:
        return True
    return (
        sorted(payload.get("members", ())) == expected["members"]
        and payload.get("radius") == expected["radius"]
    )


def run_bit_identity(
    store: str, eligible: list[int], mutations: int, queries_per_step: int
) -> dict:
    """Interleaved trace at bound 0: every answer equals the serial replay."""
    trace = _mutation_trace(eligible, mutations)
    probes = eligible[:queries_per_step]
    oracle = _Oracle(store)
    latencies: list[float] = []
    mismatches = 0
    reads = 0
    with tempfile.TemporaryDirectory(prefix="bench-repl-") as scratch:
        tier = _Tier(store, str(Path(scratch) / "wal"), max_staleness_lsn=0)
        try:
            started = time.perf_counter()
            for step, record in enumerate(trace):
                sent = tier.client.checkin(
                    record["user"], record["x"], record["y"]
                )
                assert sent["lsn"] == step + 1, sent
                oracle.apply(record)
                for vertex in probes:
                    payload, staleness, elapsed_ms = _query_once(
                        tier.client, vertex
                    )
                    latencies.append(elapsed_ms)
                    reads += 1
                    if staleness != 0 or not _matches(
                        payload, oracle.answer(vertex)
                    ):
                        mismatches += 1
            trace_seconds = time.perf_counter() - started
            routing = tier.client.stats()["routing"]
        finally:
            tier.close()
            oracle.close()
    return {
        "mutations": mutations,
        "reads": reads,
        "mismatches": mismatches,
        "bit_identical": mismatches == 0,
        "p50_query_ms": statistics.median(latencies),
        "trace_seconds": trace_seconds,
        "routing": routing,
    }


def run_staleness_bound(
    store: str,
    eligible: list[int],
    bound: int,
    mutations: int,
    queries_per_step: int,
) -> dict:
    """Fire mutations without waiting; observed staleness must stay ≤ bound."""
    trace = _mutation_trace(eligible, mutations)
    probes = eligible[:queries_per_step]
    observed_max = 0
    violations = 0
    reads = 0
    with tempfile.TemporaryDirectory(prefix="bench-repl-") as scratch:
        tier = _Tier(
            store, str(Path(scratch) / "wal"), max_staleness_lsn=bound
        )
        try:
            for step, record in enumerate(trace):
                tier.client.checkin(record["user"], record["x"], record["y"])
                # No wait_applied here: replicas are deliberately allowed to
                # lag so the coordinator's bound check is what's under test.
                for vertex in probes[: max(1, queries_per_step // 2)]:
                    _, staleness, _ = _query_once(tier.client, vertex)
                    reads += 1
                    observed_max = max(observed_max, staleness)
                    if staleness > bound:
                        violations += 1
            catchup_started = time.perf_counter()
            tier.wait_applied(len(trace))
            catchup_seconds = time.perf_counter() - catchup_started
            routing = tier.client.stats()["routing"]
        finally:
            tier.close()
    return {
        "max_staleness_lsn": bound,
        "reads": reads,
        "violations": violations,
        "within_bound": violations == 0,
        "catchup_seconds": max(catchup_seconds, 1e-6),
        "observed_max": observed_max,
        "routing": routing,
    }


#: Keys of :func:`run_staleness_bound`'s outcome that are measurement noise
#: (already-caught-up replicas make catch-up a no-op) — reported in the
#: section's ``extra`` payload, never in baseline-diffed rows.
_STALENESS_EXTRA_KEYS = ("catchup_seconds", "observed_max", "routing")


def main(argv=None) -> int:
    """Run both sections; exit non-zero on any contract violation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale (fewer mutations per section)",
    )
    args = parser.parse_args(argv)

    mutations = 6 if args.quick else 24
    queries_per_step = 4 if args.quick else 6

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-repl-store-") as root:
        store, eligible = _build_snapshot(Path(root))

        identity = run_bit_identity(
            store, eligible, mutations, queries_per_step
        )
        routing = identity.pop("routing")
        write_result(
            "replication_bit_identity",
            "Replicated tier vs serial replay (max_staleness_lsn = 0)",
            [identity],
            extra={"routing": routing},
        )
        if not identity["bit_identical"]:
            failures.append(
                f"bit-identity: {identity['mismatches']} mismatching answers"
            )

        rows = []
        extras = {}
        for bound in (2, 8):
            outcome = run_staleness_bound(
                store, eligible, bound, mutations, queries_per_step
            )
            extras[f"bound_{bound}"] = {
                key: outcome.pop(key) for key in _STALENESS_EXTRA_KEYS
            }
            rows.append(outcome)
            if not outcome["within_bound"]:
                failures.append(
                    f"staleness bound {bound}: "
                    f"{outcome['violations']} reads over the bound"
                )
        write_result(
            "replication_staleness",
            "Observed read staleness under un-awaited mutations",
            rows,
            extra=extras,
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
