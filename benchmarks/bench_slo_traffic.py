"""Closed-loop SLO traffic benchmark: deadline ladder vs a static rung.

Models the ROADMAP's online serving scenario under realistic load against a
live :class:`repro.server.SACServer`:

* **Zipfian vertex popularity** — query vertices are drawn rank-weighted
  (``rank^-s``, ``s = 1.1``) from the k-ĉore-eligible population, the
  classic skew of per-user community lookups;
* **burst phases** — open-loop Poisson arrivals whose rate alternates
  between a base and a burst phase, so queueing pressure comes and goes;
* **mutation mix** — a fraction of events are ``/checkin`` location updates
  riding the write barrier, forcing micro-batch flushes and invalidation
  exactly as live traffic would.

The identical pre-generated trace is replayed twice, each against a fresh
server over a private graph copy (answer cache off in both, so the contrast
is about *algorithm choice*, not cache warmth):

* **static** — every query runs the paper's ``Exact+`` rung explicitly, no
  deadline: the fixed-quality configuration an operator would naively pick;
* **slo** — every query carries ``deadline_ms`` and the server's calibrated
  cost model walks the ladder (``exact+`` ceiling) to the best rung that
  fits the remaining budget.

Reported per pass: client-observed p50/p95/p99 latency and the
**deadline-hit-rate** (static answers are judged against the same budget
client-side).  The headline claim — SLO mode holds ≥ 95 % hit-rate on a
trace where static ``Exact+`` drops below 70 % — is enforced in full mode
(exit non-zero) and reported in ``--quick`` CI smoke mode.  Results land in
``BENCH_bench_slo_traffic.json`` (baseline under ``benchmarks/baselines``,
diffed by ``tools/compare_bench.py``).

Run standalone::

    python benchmarks/bench_slo_traffic.py            # full, enforces targets
    python benchmarks/bench_slo_traffic.py --quick    # CI smoke
    python benchmarks/bench_slo_traffic.py --deadline-ms 50 --duration 6
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

import numpy as np

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.registry import load_dataset
from repro.engine import IncrementalEngine, QueryEngine
from repro.server import SACClient, ServerConfig, start_in_thread
from repro.service import SACService

ZIPF_S = 1.1


def generate_trace(
    graph,
    *,
    k,
    duration_s,
    base_rate,
    burst_rate,
    phase_s,
    mutation_mix,
    seed,
):
    """One reproducible open-loop trace: ``(at_s, kind, payload)`` events.

    Arrivals are Poisson with a rate that alternates every ``phase_s`` seconds
    between ``base_rate`` and ``burst_rate``; queries pick their vertex
    Zipf-weighted over the k-ĉore-eligible population; ``mutation_mix`` of
    the events are check-ins of a uniformly random vertex instead.
    """
    rng = np.random.default_rng(seed)
    cores = QueryEngine(graph).core_numbers()
    eligible = np.flatnonzero(cores >= k)
    if eligible.size == 0:
        raise SystemExit(f"no vertices with core number >= {k}; lower --k")
    ranks = np.arange(1, eligible.size + 1, dtype=float)
    weights = ranks ** -ZIPF_S
    weights /= weights.sum()
    popularity = rng.permutation(eligible)  # which vertex gets which rank

    events = []
    at = 0.0
    while True:
        phase = int(at // phase_s)
        rate = burst_rate if phase % 2 else base_rate
        at += float(rng.exponential(1.0 / rate))
        if at >= duration_s:
            break
        if rng.random() < mutation_mix:
            vertex = int(rng.choice(eligible))
            x, y = (float(c) for c in rng.uniform(0.0, 1.0, size=2))
            events.append((at, "checkin", (graph.label_of(vertex), x, y)))
        else:
            vertex = int(popularity[rng.choice(eligible.size, p=weights)])
            events.append((at, "query", graph.label_of(vertex)))
    return events


def replay(address, events, *, k, deadline_ms, slo, timeout_s):
    """Fire the trace open-loop; returns per-query latencies and hit flags.

    Open-loop means every event is dispatched at its scheduled time on its
    own thread regardless of how far behind earlier responses are — exactly
    the arrival process an overloaded server experiences.  In ``slo`` mode
    each query carries ``deadline_ms`` and the server's own
    ``deadline_missed`` verdict is trusted; in static mode queries run
    ``exact+`` explicitly and are judged client-side against the same
    budget.
    """
    lock = threading.Lock()
    latencies_ms = []
    hits = []
    rungs = {}
    errors = []

    def fire(kind, payload):
        try:
            with SACClient(address[0], address[1], timeout=timeout_s) as client:
                began = time.perf_counter()
                if kind == "checkin":
                    client.checkin(*payload)
                    return
                if slo:
                    response = client.query(payload, k, deadline_ms=deadline_ms)
                    hit = not response["deadline_missed"]
                else:
                    response = client.query(
                        payload, k, algorithm="exact+", params={"epsilon_a": 0.5}
                    )
                    hit = (time.perf_counter() - began) * 1000.0 <= deadline_ms
                elapsed_ms = (time.perf_counter() - began) * 1000.0
                rung = response["algorithm_used"]
            with lock:
                latencies_ms.append(elapsed_ms)
                hits.append(hit)
                rungs[rung] = rungs.get(rung, 0) + 1
        except Exception as error:  # noqa: BLE001 - reported in the row
            with lock:
                errors.append(f"{kind}: {error}")

    threads = []
    start = time.perf_counter()
    for at, kind, payload in events:
        delay = at - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire, args=(kind, payload))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=timeout_s)
    return latencies_ms, hits, rungs, errors


def _serve(graph, *, k, linger_ms, slo):
    """A fresh daemon over a private mutable copy, cache off, huge lanes."""
    service = SACService(
        engine=IncrementalEngine(graph.mutable_copy()), use_cache=False
    )
    service.warm(k)
    return start_in_thread(
        service,
        ServerConfig(
            port=0,
            max_linger_ms=linger_ms,
            warm_ks=(k,),
            slo_enabled=slo,
            # Depth far beyond the trace so admission control never rejects:
            # this benchmark measures the ladder, not load shedding.
            max_queue_depth=1_000_000,
        ),
    )


def _row(mode, events, latencies_ms, hits, errors):
    """One result row; floats rounded for the compare_bench 20x band.

    The per-rung answer breakdown is machine-timing-dependent, so it rides
    in the section's ``extra`` payload (which ``compare_bench`` ignores),
    never in a row cell (which it compares exactly for strings).
    """
    queries = len(latencies_ms)
    mutations = sum(1 for _at, kind, _payload in events if kind == "checkin")
    percentiles = (
        np.percentile(latencies_ms, (50, 95, 99)) if latencies_ms else (0.0,) * 3
    )
    return {
        "mode": mode,
        "queries": queries,
        "mutations": mutations,
        "errors": len(errors),
        "p50_ms": round(float(percentiles[0]), 2),
        "p95_ms": round(float(percentiles[1]), 2),
        "p99_ms": round(float(percentiles[2]), 2),
        "deadline_hit_rate": round(sum(hits) / queries, 4) if queries else 0.0,
    }


def run_benchmark(
    *, dataset, scale, k, deadline_ms, duration_s, base_rate, burst_rate, phase_s, mutation_mix, linger_ms, seed, timeout_s
):
    """Replay one trace statically and under SLO; returns the two rows."""
    graph = load_dataset(dataset, scale=scale)
    events = generate_trace(
        graph,
        k=k,
        duration_s=duration_s,
        base_rate=base_rate,
        burst_rate=burst_rate,
        phase_s=phase_s,
        mutation_mix=mutation_mix,
        seed=seed,
    )
    queries = sum(1 for _at, kind, _payload in events if kind == "query")
    print(
        f"trace: {len(events)} events ({queries} queries) over {duration_s}s, "
        f"rates {base_rate}/{burst_rate} Hz, deadline {deadline_ms}ms, "
        f"graph n={graph.num_vertices}"
    )

    rows = []
    rungs_by_mode = {}
    for mode, slo in (("static-exact+", False), ("slo-ladder", True)):
        handle = _serve(graph, k=k, linger_ms=linger_ms, slo=slo)
        try:
            latencies_ms, hits, rungs, errors = replay(
                (handle.host, handle.port),
                events,
                k=k,
                deadline_ms=deadline_ms,
                slo=slo,
                timeout_s=timeout_s,
            )
        finally:
            handle.stop()
        for message in errors[:3]:
            print(f"  {mode} error: {message}")
        print(f"  {mode} rungs: {rungs}")
        rungs_by_mode[mode] = rungs
        rows.append(_row(mode, events, latencies_ms, hits, errors))
    return rows, rungs_by_mode


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke workload (targets reported, not enforced)")
    parser.add_argument("--dataset", default="brightkite", help="registry dataset name")
    parser.add_argument("--scale", type=float, default=0.02, help="dataset scale multiplier")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--deadline-ms", type=float, default=100.0, help="per-query budget")
    parser.add_argument("--duration", type=float, default=None, help="trace length in seconds")
    parser.add_argument("--base-rate", type=float, default=None, help="calm-phase arrivals per second")
    parser.add_argument("--burst-rate", type=float, default=None, help="burst-phase arrivals per second")
    parser.add_argument("--phase", type=float, default=1.0, help="phase length in seconds")
    parser.add_argument("--mutation-mix", type=float, default=0.05, help="fraction of events that are check-ins")
    parser.add_argument("--linger-ms", type=float, default=2.0, help="server micro-batch linger")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--timeout", type=float, default=180.0, help="client timeout in seconds")
    args = parser.parse_args(argv)

    duration = args.duration if args.duration is not None else (2.0 if args.quick else 4.0)
    base_rate = args.base_rate if args.base_rate is not None else (10.0 if args.quick else 15.0)
    burst_rate = args.burst_rate if args.burst_rate is not None else (40.0 if args.quick else 60.0)

    rows, rungs_by_mode = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        k=args.k,
        deadline_ms=args.deadline_ms,
        duration_s=duration,
        base_rate=base_rate,
        burst_rate=burst_rate,
        phase_s=args.phase,
        mutation_mix=args.mutation_mix,
        linger_ms=args.linger_ms,
        seed=args.seed,
        timeout_s=args.timeout,
    )
    write_result(
        "slo_traffic",
        f"SLO ladder vs static Exact+ under burst traffic (deadline {args.deadline_ms}ms)",
        rows,
        extra={
            "deadline_ms": args.deadline_ms,
            "duration_s": duration,
            "base_rate": base_rate,
            "burst_rate": burst_rate,
            "mutation_mix": args.mutation_mix,
            "zipf_s": ZIPF_S,
            "seed": args.seed,
            "rungs": rungs_by_mode,
        },
    )

    static_hit = next(r["deadline_hit_rate"] for r in rows if r["mode"] == "static-exact+")
    slo_hit = next(r["deadline_hit_rate"] for r in rows if r["mode"] == "slo-ladder")
    failures = sum(r["errors"] for r in rows)
    print(
        f"deadline-hit-rate: static-exact+ {static_hit:.1%}, slo-ladder {slo_hit:.1%} "
        f"(targets: static < 70%, slo >= 95%)"
    )
    if failures:
        print(f"FAIL: {failures} requests errored")
        return 1
    if not args.quick:
        if slo_hit < 0.95 or static_hit >= 0.70:
            print("FAIL: SLO contrast targets not met")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
