"""Shared constants and helpers for the benchmark harness.

Lives in a uniquely-named module (not ``conftest``) so benchmark modules can
``from bench_common import ...`` without colliding with ``tests/conftest.py``
when both directories are collected in one pytest invocation.

Scale knobs
-----------
The environment variable ``REPRO_BENCH_SCALE`` (default ``1.0``) multiplies
the stand-in dataset sizes; ``REPRO_BENCH_QUERIES`` (default ``8``) sets the
number of query vertices per measurement point.  Increase both to push the
harness towards paper-scale runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.experiments.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "8"))

#: Datasets used by the quality and efficiency benchmarks.  The paper uses
#: Brightkite/Gowalla for quality and all six for efficiency; here the two
#: families (geo-social and power-law synthetic) are each represented by
#: their smaller members so the whole harness runs in minutes.
QUALITY_DATASETS = ("brightkite", "gowalla")
EFFICIENCY_DATASETS = ("brightkite", "syn1")


def write_result(name: str, title: str, rows: List[Dict[str, object]]) -> str:
    """Render ``rows`` as a table, write it under ``benchmarks/results``, return it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table = format_table(rows)
    text = f"{title}\n{'=' * len(title)}\n{table}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    print(f"\n{text}")
    return text
