"""Shared constants and helpers for the benchmark harness.

Lives in a uniquely-named module (not ``conftest``) so benchmark modules can
``from bench_common import ...`` without colliding with ``tests/conftest.py``
when both directories are collected in one pytest invocation.

Scale knobs
-----------
The environment variable ``REPRO_BENCH_SCALE`` (default ``1.0``) multiplies
the stand-in dataset sizes; ``REPRO_BENCH_QUERIES`` (default ``8``) sets the
number of query vertices per measurement point.  Increase both to push the
harness towards paper-scale runs.

Machine-readable output
-----------------------
Besides the human-readable table under ``benchmarks/results``, every
:func:`write_result` call also lands in a ``BENCH_<benchmark>.json`` file at
the repo root, keyed by the calling benchmark module (so a script with
several tables produces one JSON with several sections).  Committed
baselines live under ``benchmarks/baselines`` and are diffed in CI by
``tools/compare_bench.py``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "8"))

#: Datasets used by the quality and efficiency benchmarks.  The paper uses
#: Brightkite/Gowalla for quality and all six for efficiency; here the two
#: families (geo-social and power-law synthetic) are each represented by
#: their smaller members so the whole harness runs in minutes.
QUALITY_DATASETS = ("brightkite", "gowalla")
EFFICIENCY_DATASETS = ("brightkite", "syn1")

#: Per-benchmark accumulation of JSON sections, keyed by benchmark module
#: name; the file is rewritten after every :func:`write_result` call so a
#: crashing later table never loses the earlier ones.
_JSON_SECTIONS: Dict[str, Dict[str, Dict[str, object]]] = {}


def _caller_benchmark_name() -> str:
    """Name of the benchmark module that called :func:`write_result`."""
    frame = sys._getframe(2)
    caller = frame.f_globals.get("__file__")
    if caller:
        return Path(caller).stem
    return "unknown"


def peak_rss_mb() -> Optional[float]:
    """This process's peak resident set size in MiB (``None`` off-POSIX).

    ``ru_maxrss`` is the high-water mark since process start (kilobytes on
    Linux, bytes on macOS), so one reading at result-writing time captures
    the benchmark's true peak regardless of when it occurred.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak /= 1024.0
    return round(peak / 1024.0, 1)


def write_json_result(
    benchmark: str,
    section: str,
    title: str,
    rows: List[Dict[str, object]],
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Merge one section into ``BENCH_<benchmark>.json`` at the repo root."""
    sections = _JSON_SECTIONS.get(benchmark)
    if sections is None:
        # Seed from the existing file so separate invocations of the same
        # benchmark (e.g. the default mode and a sweep mode in two CI steps)
        # accumulate sections instead of clobbering each other.
        sections = {}
        existing = REPO_ROOT / f"BENCH_{benchmark}.json"
        if existing.exists():
            try:
                sections = dict(json.loads(existing.read_text())["sections"])
            except (ValueError, KeyError, OSError):
                sections = {}
        _JSON_SECTIONS[benchmark] = sections
    # Every section records the writing process's peak RSS, so
    # tools/compare_bench.py can gate memory regressions alongside timing
    # ones.  Callers may override by passing their own peak_rss_mb (e.g. a
    # parent aggregating subprocess peaks).
    extra = dict(extra or {})
    rss = peak_rss_mb()
    if rss is not None:
        extra.setdefault("peak_rss_mb", rss)
    sections[section] = {
        "title": title,
        "rows": rows,
        **({"extra": extra} if extra else {}),
    }
    path = REPO_ROOT / f"BENCH_{benchmark}.json"
    payload = {"benchmark": benchmark, "sections": sections}
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8")
    return path


def write_result(
    name: str,
    title: str,
    rows: List[Dict[str, object]],
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Render ``rows`` as a table, write it under ``benchmarks/results``, return it.

    Also appends the rows (plus the optional ``extra`` machine-readable
    payload) as section ``name`` of the calling benchmark's
    ``BENCH_<benchmark>.json`` at the repo root.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table = format_table(rows)
    text = f"{title}\n{'=' * len(title)}\n{table}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    write_json_result(_caller_benchmark_name(), name, title, rows, extra)
    print(f"\n{text}")
    return text
