"""Figure 12 — efficiency of the SAC search algorithms.

Three panels, each averaged over the query workload:

* (a–e) runtime of the approximation algorithms (AppInc, AppFast(0),
  AppFast(0.5), AppAcc(0.5)) as the degree threshold k grows;
* (f–j) runtime of the exact algorithms (Exact, Exact+) as k grows;
* (k–o) scalability: runtime of the approximation algorithms on random vertex
  subsets of 20%–100% of the graph.

Expected shape (paper): AppFast is the fastest and Exact the slowest by
orders of magnitude, Exact+ sits between Exact and the approximations, and
all approximation algorithms scale roughly linearly with graph size.
"""

from __future__ import annotations

import time

import pytest

from bench_common import BENCH_QUERIES, EFFICIENCY_DATASETS, write_result
from repro.core.appacc import app_acc
from repro.core.appfast import app_fast
from repro.core.appinc import app_inc
from repro.core.exact import exact
from repro.core.exact_plus import exact_plus
from repro.datasets.registry import load_dataset
from repro.exceptions import InvalidParameterError, NoCommunityError
from repro.experiments.queries import select_query_vertices

K_VALUES = (4, 7, 10, 13, 16)
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)

APPROX_ALGORITHMS = {
    "appinc": lambda graph, query, k: app_inc(graph, query, k),
    "appfast(0.0)": lambda graph, query, k: app_fast(graph, query, k, 0.0),
    "appfast(0.5)": lambda graph, query, k: app_fast(graph, query, k, 0.5),
    "appacc(0.5)": lambda graph, query, k: app_acc(graph, query, k, 0.5),
}


def _mean_query_time(graph, queries, run, k):
    elapsed = 0.0
    answered = 0
    for query in queries:
        start = time.perf_counter()
        try:
            run(graph, query, k)
        except NoCommunityError:
            continue
        elapsed += time.perf_counter() - start
        answered += 1
    if answered == 0:
        return None
    return elapsed / answered


@pytest.mark.benchmark(group="fig12")
def test_fig12_approx_vs_k(benchmark, datasets, workloads):
    """Panels (a)–(e): approximation-algorithm runtime as k grows."""

    def run():
        rows = []
        for name in EFFICIENCY_DATASETS:
            graph = datasets[name]
            queries = workloads[name][:8]
            for k in K_VALUES:
                for algo_name, algo in APPROX_ALGORITHMS.items():
                    mean = _mean_query_time(graph, queries, algo, k)
                    if mean is None:
                        continue
                    rows.append(
                        {"dataset": name, "k": k, "algorithm": algo_name, "avg_time_s": mean}
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig12_approx_vs_k", "Figure 12(a-e): approximation algorithms vs k", rows)

    # Shape check: AppFast(0.5) is never dramatically slower than AppAcc(0.5)
    # on average (the paper reports AppFast 2-5x faster than AppAcc).
    for name in EFFICIENCY_DATASETS:
        fast = [r["avg_time_s"] for r in rows if r["dataset"] == name and r["algorithm"] == "appfast(0.5)"]
        acc = [r["avg_time_s"] for r in rows if r["dataset"] == name and r["algorithm"] == "appacc(0.5)"]
        if fast and acc:
            assert sum(fast) / len(fast) <= 2.0 * (sum(acc) / len(acc))


@pytest.mark.benchmark(group="fig12")
def test_fig12_exact_vs_k(benchmark):
    """Panels (f)–(j): exact-algorithm runtime as k grows.

    The basic ``Exact`` algorithm is cubic in the candidate-set size, so this
    panel runs on a deliberately small stand-in graph and few queries (the
    paper itself skips Exact runs that exceed 10 hours).
    """

    def run():
        graph = load_dataset("brightkite", scale=0.1, seed=3)
        queries = select_query_vertices(graph, count=2, min_core=4, seed=11)
        rows = []
        for k in (4, 7):
            for algo_name, algo in (
                ("exact", lambda g, q, kk: exact(g, q, kk)),
                ("exact+", lambda g, q, kk: exact_plus(g, q, kk, epsilon_a=1e-3)),
            ):
                mean = _mean_query_time(graph, queries, algo, k)
                if mean is None:
                    continue
                rows.append({"k": k, "algorithm": algo_name, "avg_time_s": mean})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig12_exact_vs_k", "Figure 12(f-j): exact algorithms vs k (small stand-in)", rows)

    # Exact+ must beat Exact at the default k=4 (paper: by >= 4 orders of
    # magnitude at full scale; here we only assert a clear win).
    exact_rows = {row["k"]: row["avg_time_s"] for row in rows if row["algorithm"] == "exact"}
    plus_rows = {row["k"]: row["avg_time_s"] for row in rows if row["algorithm"] == "exact+"}
    shared = set(exact_rows) & set(plus_rows)
    assert shared
    assert any(plus_rows[k] < exact_rows[k] for k in shared)


@pytest.mark.benchmark(group="fig12")
def test_fig12_scalability(benchmark, datasets):
    """Panels (k)–(o): approximation-algorithm runtime vs graph fraction."""

    def run():
        rows = []
        for name in EFFICIENCY_DATASETS:
            base_graph = datasets[name]
            for fraction in FRACTIONS:
                graph = base_graph.random_subgraph_fraction(fraction, seed=5)
                queries = select_query_vertices(
                    graph, count=max(4, BENCH_QUERIES // 2), min_core=4, seed=9
                )
                if not queries:
                    continue
                for algo_name, algo in APPROX_ALGORITHMS.items():
                    mean = _mean_query_time(graph, queries, algo, 4)
                    if mean is None:
                        continue
                    rows.append(
                        {
                            "dataset": name,
                            "fraction": fraction,
                            "vertices": graph.num_vertices,
                            "algorithm": algo_name,
                            "avg_time_s": mean,
                        }
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig12_scalability", "Figure 12(k-o): scalability vs graph fraction", rows)
    assert rows
    # Every algorithm answers queries at every fraction that produced a workload.
    names = {row["algorithm"] for row in rows}
    assert names == set(APPROX_ALGORITHMS)
