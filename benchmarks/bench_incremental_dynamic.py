"""Incremental dynamic replay benchmark: one engine vs. rebuild-per-check-in.

Replays the Figure-13 workload — a synthetic check-in stream over the
Brightkite stand-in, re-querying the most mobile users' communities at each
of their check-ins — through both :class:`repro.dynamic.SACTracker` paths:

* **incremental** (default): one :class:`repro.engine.IncrementalEngine`
  absorbs every check-in in place; the core decomposition, k-ĉore labelling,
  and per-component artifacts are built once and patched as locations move;
* **rebuild**: every tracked check-in materialises a coordinate snapshot and
  rebuilds all per-graph state from scratch (the pre-incremental behaviour).

Verifies the two paths produce bit-identical timelines (same member sets,
same MCC radii and centres, same timestamps) and that the incremental path
replays the stream at least ``--min-speedup`` times faster.

Run standalone::

    python benchmarks/bench_incremental_dynamic.py            # full workload
    python benchmarks/bench_incremental_dynamic.py --quick    # CI smoke

Exits non-zero when the timelines diverge or the speedup floor is missed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.geosocial import CheckinGenerator, TravelProfile, brightkite_like
from repro.dynamic.evaluation import select_mobile_queries
from repro.dynamic.stream import LocationStream
from repro.dynamic.tracker import SACTracker


def _timelines_identical(first, second) -> bool:
    """Bit-exact comparison of two tracker timeline dicts."""
    if set(first) != set(second):
        return False
    for user in first:
        if len(first[user]) != len(second[user]):
            return False
        for a, b in zip(first[user], second[user]):
            if (
                a.timestamp != b.timestamp
                or a.members != b.members
                or a.circle.radius != b.circle.radius
                or a.circle.center.x != b.circle.center.x
                or a.circle.center.y != b.circle.center.y
            ):
                return False
    return True


def run_benchmark(
    *,
    vertices: int,
    emitters: int,
    checkins_per_user: int,
    tracked: int,
    k: int,
    epsilon_f: float,
    repeats: int,
) -> tuple[list[dict], bool, float]:
    """Replay the Fig-13 workload both ways; returns (rows, identical, speedup)."""
    graph = brightkite_like(vertices, average_degree=8.0, seed=21)
    generator = CheckinGenerator(
        graph,
        TravelProfile(local_std=0.01, move_probability=0.1, move_distance_mean=0.25),
        seed=13,
    )
    emitting_users = list(range(min(graph.num_vertices, emitters)))
    checkins = generator.generate(
        emitting_users, checkins_per_user=checkins_per_user, duration_days=40.0
    )
    travel = generator.total_travel_distance(checkins)
    queries = select_mobile_queries(graph, checkins, travel, count=tracked, min_friends=8)

    def replay(incremental: bool):
        best = float("inf")
        timelines = None
        for _ in range(repeats):
            tracker = SACTracker(
                LocationStream(graph, checkins),
                k,
                algorithm="appfast",
                algorithm_params={"epsilon_f": epsilon_f},
                incremental=incremental,
            )
            start = time.perf_counter()
            timelines = tracker.track(queries)
            best = min(best, time.perf_counter() - start)
        return timelines, best

    incremental_timelines, incremental_seconds = replay(True)
    rebuild_timelines, rebuild_seconds = replay(False)

    identical = _timelines_identical(incremental_timelines, rebuild_timelines)
    speedup = rebuild_seconds / incremental_seconds
    total_queries = sum(len(snapshots) for snapshots in incremental_timelines.values())
    rows = [
        {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "checkins": len(checkins),
            "tracked_users": len(queries),
            "tracked_queries": total_queries,
            "incremental_checkins_per_s": round(len(checkins) / incremental_seconds, 1),
            "rebuild_checkins_per_s": round(len(checkins) / rebuild_seconds, 1),
            "speedup": round(speedup, 2),
            "identical": identical,
        }
    ]
    return rows, identical, speedup


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI smoke workload (~20 s)"
    )
    parser.add_argument("--vertices", type=int, default=None, help="graph size")
    parser.add_argument(
        "--emitters", type=int, default=None, help="users emitting check-ins"
    )
    parser.add_argument(
        "--checkins-per-user", type=int, default=None, help="check-ins per emitter"
    )
    parser.add_argument("--tracked", type=int, default=None, help="tracked query users")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--epsilon-f", type=float, default=0.5)
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this incremental/rebuild throughput ratio "
        "(default: 3.0 full, 1.2 quick — smoke runs only sanity-check the gap)",
    )
    args = parser.parse_args(argv)

    vertices = args.vertices if args.vertices is not None else (4000 if args.quick else 12000)
    emitters = args.emitters if args.emitters is not None else (400 if args.quick else 600)
    per_user = args.checkins_per_user if args.checkins_per_user is not None else 8
    tracked = args.tracked if args.tracked is not None else (8 if args.quick else 12)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 2)
    min_speedup = args.min_speedup if args.min_speedup is not None else (1.2 if args.quick else 3.0)

    print(
        f"incremental dynamic benchmark: vertices={vertices} emitters={emitters} "
        f"checkins/user={per_user} tracked={tracked} k={args.k}"
    )
    rows, identical, speedup = run_benchmark(
        vertices=vertices,
        emitters=emitters,
        checkins_per_user=per_user,
        tracked=tracked,
        k=args.k,
        epsilon_f=args.epsilon_f,
        repeats=repeats,
    )
    write_result(
        "incremental_dynamic",
        "Incremental engine vs rebuild-per-check-in on the Fig-13 replay",
        rows,
    )
    if not identical:
        print("FAIL: incremental timelines diverge from rebuild-per-check-in", file=sys.stderr)
        return 1
    print(f"replay speedup: {speedup:.2f}x (timelines identical)")
    if speedup < min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below the {min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
