"""Warm-start benchmark: snapshot readiness and shard-dispatch cost.

Measures the two claims of the storage layer against the pre-store paths,
with byte-identical answers enforced throughout:

* **Engine readiness / time-to-first-answer** — a *cold* start loads the
  cached dataset ``.npz``, builds a :class:`repro.engine.QueryEngine`, and
  materialises every per-component artifact bundle at the serving ``k``
  (core decomposition, k-ĉore labelling, per-component grids and local
  CSRs — the state a server needs before it can answer arbitrary traffic
  without build hiccups).  A *warm* start reaches the **same**
  fully-materialised state by opening an :class:`repro.store.ArtifactStore`
  snapshot memory-mapped via ``QueryEngine.from_store``.  *Readiness* is
  the time until that state stands — the cold start this layer exists to
  eliminate, targeted at **≥ 10×** faster.  *Time-to-first-answer* adds one
  identical first query on top of each path (its search cost is
  path-independent, so the TTFA ratio is readiness diluted by however
  expensive the first query happens to be).
* **Per-batch dispatch bytes** — the same repeated batch is served by a
  :class:`repro.service.ShardedExecutor` on the legacy pickle protocol
  (component arrays re-serialised every batch) and on the shared-memory
  protocol (arrays published once, per-batch messages carry query ids).
  Reported from the executors' own ``ExecutorStats`` byte counters.

Run standalone::

    python benchmarks/bench_store_warmstart.py            # full workload
    python benchmarks/bench_store_warmstart.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine
from repro.experiments.queries import select_query_vertices
from repro.graph.io import load_graph_npz
from repro.service import ShardedExecutor
from repro.store import ArtifactStore


def _identical(first, second) -> bool:
    """Bitwise comparison of two SACResults (members, circle, stats)."""
    return (
        first.members == second.members
        and first.circle.radius == second.circle.radius
        and first.circle.center.x == second.circle.center.x
        and first.circle.center.y == second.circle.center.y
        and first.stats == second.stats
    )


def _snapshot(graph, store_path, k):
    """Materialise every k-level bundle and persist the engine state."""
    engine = QueryEngine(graph)
    for component in range(engine.prepare(k)):
        engine.component_artifacts(k, component)
    ArtifactStore.save(store_path, engine)
    return engine


def _time_cold_start(cache_path, query, k, epsilon_f):
    """Dataset ``.npz`` → fully materialised engine → first answer, timed.

    Returns ``(result, readiness_seconds, ttfa_seconds, engine)``.
    """
    start = time.perf_counter()
    graph = load_graph_npz(cache_path)
    engine = QueryEngine(graph)
    for component in range(engine.prepare(k)):
        engine.component_artifacts(k, component)
    ready = time.perf_counter() - start
    result = engine.search(query, k, algorithm="appfast", epsilon_f=epsilon_f)
    return result, ready, time.perf_counter() - start, engine


def _time_warm_start(store_path, query, k, epsilon_f):
    """Snapshot → memory-mapped engine → first answer, all timed.

    Returns ``(result, readiness_seconds, ttfa_seconds, engine)``.
    """
    start = time.perf_counter()
    engine = QueryEngine.from_store(store_path)
    ready = time.perf_counter() - start
    result = engine.search(query, k, algorithm="appfast", epsilon_f=epsilon_f)
    return result, ready, time.perf_counter() - start, engine


def _dispatch_costs(store_path, queries, k, epsilon_f, workers, rounds, reference):
    """Serve the same repeated batch on both dispatch protocols.

    Returns per-batch byte costs from the executors' counters plus whether
    every answer matched ``reference`` bitwise.
    """
    identical = True
    costs = {}
    for label, use_shm in (("pickle", False), ("shm", True)):
        executor = ShardedExecutor(
            QueryEngine.from_store(store_path), workers=workers, use_shared_memory=use_shm
        )
        start = time.perf_counter()
        for _round in range(rounds):
            batch = executor.run(queries, k, algorithm="appfast", epsilon_f=epsilon_f)
            for query, result in batch.results.items():
                identical &= _identical(result, reference[query])
        elapsed = time.perf_counter() - start
        stats = executor.stats
        executor.close()
        costs[label] = {
            "elapsed": elapsed,
            "per_batch_bytes": (stats.bytes_pickled + stats.bytes_dispatched) / rounds,
            "shared_once": stats.bytes_shared,
            "fallbacks": stats.serial_fallbacks + stats.shm_fallbacks,
        }
    return costs, identical


def run_benchmark(dataset_names, *, scale, queries_per_dataset, k, epsilon_f, workers, rounds):
    """Measure warm-start readiness and dispatch bytes per dataset."""
    rows = []
    identical = True
    speedups = []

    for name in dataset_names:
        with tempfile.TemporaryDirectory() as tmp:
            # "On a cached dataset": the graph .npz exists before the clock
            # starts, exactly like a repeated benchmark run.
            load_dataset(name, scale=scale, cache_dir=tmp)
            cache_path = next(Path(tmp).glob("*.npz"))
            scout = load_graph_npz(cache_path)
            queries = select_query_vertices(
                scout, count=queries_per_dataset, min_core=k, seed=9
            )
            if not queries:
                print(f"  {name}: no queries with core number >= {k}, skipped")
                continue
            store_path = Path(tmp) / "snapshot"
            _snapshot(scout, store_path, k)

            cold_result, cold_ready, cold_seconds, cold_engine = _time_cold_start(
                cache_path, queries[0], k, epsilon_f
            )
            warm_result, warm_ready, warm_seconds, warm_engine = _time_warm_start(
                store_path, queries[0], k, epsilon_f
            )
            matches = _identical(cold_result, warm_result)
            reference = {}
            for query in queries:
                reference[query] = cold_engine.search(
                    query, k, algorithm="appfast", epsilon_f=epsilon_f
                )
                matches &= _identical(
                    reference[query],
                    warm_engine.search(query, k, algorithm="appfast", epsilon_f=epsilon_f),
                )

            costs, dispatch_matches = _dispatch_costs(
                store_path, queries, k, epsilon_f, workers, rounds, reference
            )
            matches &= dispatch_matches
            identical &= matches
            speedup = cold_ready / warm_ready if warm_ready > 0 else float("inf")
            speedups.append(speedup)
            rows.append(
                {
                    "dataset": name,
                    "vertices": scout.num_vertices,
                    "cold_ready_ms": round(cold_ready * 1000.0, 2),
                    "warm_ready_ms": round(warm_ready * 1000.0, 2),
                    "ready_speedup": round(speedup, 1),
                    "ttfa_speedup": round(
                        cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
                        1,
                    ),
                    "pickle_B_per_batch": int(costs["pickle"]["per_batch_bytes"]),
                    "shm_B_per_batch": int(costs["shm"]["per_batch_bytes"]),
                    "shm_B_shared_once": int(costs["shm"]["shared_once"]),
                    "fallbacks": costs["pickle"]["fallbacks"] + costs["shm"]["fallbacks"],
                    "identical": matches,
                }
            )
    return rows, identical, speedups


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke workload")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale multiplier")
    parser.add_argument("--queries", type=int, default=None, help="queries per batch")
    parser.add_argument("--rounds", type=int, default=None, help="dispatch rounds per protocol")
    parser.add_argument("--workers", type=int, default=2, help="process-pool size")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--epsilon-f", type=float, default=0.5)
    parser.add_argument(
        "--datasets",
        default="brightkite,syn1",
        help="comma-separated registry dataset names",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 2.0)
    queries = args.queries if args.queries is not None else (12 if args.quick else 48)
    rounds = args.rounds if args.rounds is not None else (2 if args.quick else 4)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]

    print(
        f"store warm-start benchmark: datasets={names} scale={scale} "
        f"queries={queries} rounds={rounds} workers={args.workers} k={args.k}"
    )
    rows, identical, speedups = run_benchmark(
        names,
        scale=scale,
        queries_per_dataset=queries,
        k=args.k,
        epsilon_f=args.epsilon_f,
        workers=args.workers,
        rounds=rounds,
    )
    write_result(
        "store_warmstart",
        "Snapshot warm start (time-to-first-answer) and shard dispatch bytes",
        rows,
    )
    if not identical:
        print("FAIL: warm-started or shard answers diverged from cold build", file=sys.stderr)
        return 1
    if rows:
        worst = min(speedups)
        target = "met" if worst >= 10.0 else "NOT met (machine/scale-dependent)"
        shrink = [
            row["pickle_B_per_batch"] / row["shm_B_per_batch"]
            for row in rows
            if row["shm_B_per_batch"]
        ]
        print(
            f"overall: engine readiness {worst:.1f}x faster at worst from a "
            f"snapshot (target >=10x {target}); per-batch dispatch bytes "
            f"shrink {min(shrink):.0f}x at worst on the shared-memory protocol"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
