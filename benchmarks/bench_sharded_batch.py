"""Sharded + cached batch serving benchmark vs. the serial engine path.

Models the paper's Table-4-style serving scenario: the same batch of popular
query vertices is answered repeatedly (applications re-query every refresh).
Three execution paths answer the identical workload:

* **serial** — one :class:`repro.engine.QueryEngine`, every query answered
  in-process, every round recomputed (the pre-service state of the art);
* **sharded** — :class:`repro.service.ShardedExecutor` with a process pool,
  batches partitioned by k-ĉore component, no answer cache;
* **service** — :class:`repro.service.SACService` with the pool *and* the
  persistent answer cache, so repeat rounds are served from cache.

All three must return bit-identical results (member sets, circle floats,
stats) — the benchmark exits non-zero if they ever diverge.  Throughput is
reported per path; the headline ``service`` speedup comes from sharding on
multi-core machines plus cache hits on repeat rounds, and the benchmark
prints whether the ≥2× target over the serial path was met.

An **overlap sweep** mode (``--overlap-sweep``) measures the factorised
batch planner instead: the same base queries are duplicated 1×/2×/4×/8× and
answered through ``QueryEngine.search_many`` with the plan on and off.  The
per-query path pays every duplicate; the planner answers each distinct query
once and shares each ``(component, k)`` group's candidate artifacts and
distance matrix, so its per-query cost drops superlinearly with overlap
(speedup at factor *f* exceeds *f*).  The sweep re-checks bit-identity
across the planned, per-query, sharded, and cached paths and exits non-zero
when answers diverge or the plan's factorisation counters stay zero.

Run standalone::

    python benchmarks/bench_sharded_batch.py                 # full workload
    python benchmarks/bench_sharded_batch.py --quick         # CI smoke
    python benchmarks/bench_sharded_batch.py --workers 4 --rounds 4
    python benchmarks/bench_sharded_batch.py --quick --overlap-sweep
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine
from repro.experiments.queries import select_query_vertices
from repro.service import SACService, ShardedExecutor


def _identical(first, second) -> bool:
    """Bitwise comparison of two SACResults (members, circle, stats)."""
    return (
        first.members == second.members
        and first.circle.radius == second.circle.radius
        and first.circle.center.x == second.circle.center.x
        and first.circle.center.y == second.circle.center.y
        and first.stats == second.stats
    )


def _time_serial(graph, queries, k, rounds, epsilon_f):
    """Serial engine path: recompute every query every round."""
    engine = QueryEngine(graph)
    results = {}
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            results[query] = engine.search(
                query, k, algorithm="appfast", epsilon_f=epsilon_f
            )
    return results, time.perf_counter() - start


def _time_sharded(graph, queries, k, rounds, epsilon_f, workers):
    """Sharded pool path, cache off: every round pays the pool."""
    executor = ShardedExecutor(QueryEngine(graph), workers=workers)
    results = {}
    start = time.perf_counter()
    for _ in range(rounds):
        batch = executor.run(queries, k, algorithm="appfast", epsilon_f=epsilon_f)
        results.update(batch.results)
    elapsed = time.perf_counter() - start
    executor.close()
    return results, elapsed, executor.stats


def _time_service(graph, queries, k, rounds, epsilon_f, workers):
    """Full serving layer: pool + persistent answer cache across rounds."""
    service = SACService(graph, workers=workers)
    results = {}
    cache_hits = 0
    start = time.perf_counter()
    for _ in range(rounds):
        batch = service.submit_batch(queries, k, algorithm="appfast", epsilon_f=epsilon_f)
        results.update(batch.results)
        cache_hits += batch.cache_hits
    elapsed = time.perf_counter() - start
    service.close()
    return results, elapsed, cache_hits


def run_benchmark(dataset_names, *, scale, queries_per_dataset, k, epsilon_f, rounds, workers):
    """Time the three paths per dataset; returns ``(rows, all_identical)``."""
    rows = []
    identical = True
    totals = {"queries": 0, "serial": 0.0, "sharded": 0.0, "service": 0.0}

    for name in dataset_names:
        graph = load_dataset(name, scale=scale)
        queries = select_query_vertices(
            graph, count=queries_per_dataset, min_core=k, seed=9
        )
        if not queries:
            print(f"  {name}: no queries with core number >= {k}, skipped")
            continue
        total_queries = len(queries) * rounds

        serial_results, serial_time = _time_serial(graph, queries, k, rounds, epsilon_f)
        sharded_results, sharded_time, _stats = _time_sharded(
            graph, queries, k, rounds, epsilon_f, workers
        )
        service_results, service_time, cache_hits = _time_service(
            graph, queries, k, rounds, epsilon_f, workers
        )

        matches = set(serial_results) == set(sharded_results) == set(service_results)
        if matches:
            matches = all(
                _identical(serial_results[q], sharded_results[q])
                and _identical(serial_results[q], service_results[q])
                for q in serial_results
            )
        identical &= matches
        totals["queries"] += total_queries
        totals["serial"] += serial_time
        totals["sharded"] += sharded_time
        totals["service"] += service_time
        rows.append(
            {
                "dataset": name,
                "vertices": graph.num_vertices,
                "queries": total_queries,
                "serial_qps": round(total_queries / serial_time, 2),
                "sharded_qps": round(total_queries / sharded_time, 2),
                "service_qps": round(total_queries / service_time, 2),
                "sharded_speedup": round(serial_time / sharded_time, 2),
                "service_speedup": round(serial_time / service_time, 2),
                "cache_hits": cache_hits,
                "identical": matches,
            }
        )

    if totals["service"] > 0:
        rows.append(
            {
                "dataset": "OVERALL",
                "vertices": "",
                "queries": totals["queries"],
                "serial_qps": round(totals["queries"] / totals["serial"], 2),
                "sharded_qps": round(totals["queries"] / totals["sharded"], 2),
                "service_qps": round(totals["queries"] / totals["service"], 2),
                "sharded_speedup": round(totals["serial"] / totals["sharded"], 2),
                "service_speedup": round(totals["serial"] / totals["service"], 2),
                "cache_hits": "",
                "identical": identical,
            }
        )
    return rows, identical


def _sweep_variants_identical(planned, serial, sharded, cached) -> bool:
    """Check the four execution paths agree bitwise on every answered query."""
    answered = {q for q, result in planned.items() if result is not None}
    others = (
        {q for q, result in serial.items() if result is not None},
        set(sharded),
        set(cached),
    )
    if any(other != answered for other in others):
        return False
    return all(
        _identical(planned[q], serial[q])
        and _identical(planned[q], sharded[q])
        and _identical(planned[q], cached[q])
        for q in answered
    )


def run_overlap_sweep(
    dataset_name, *, scale, base_queries, factors, k, epsilon_f, workers
):
    """Duplicate a base batch by each factor; time planned vs per-query.

    Returns ``(rows, identical, counters, superlinear)`` where ``counters``
    snapshots the planned engine's factorisation stats and ``superlinear``
    is whether the plan's speedup at the largest factor exceeds the factor
    itself (dedupe alone would only reach the factor; the margin comes from
    the shared per-group candidate sets and vectorised distance matrices).
    """
    graph = load_dataset(dataset_name, scale=scale)
    base = select_query_vertices(graph, count=base_queries, min_core=k, seed=9)
    if not base:
        print(f"  {dataset_name}: no queries with core number >= {k}, skipped")
        return [], True, {}, False

    planned_engine = QueryEngine(graph)
    serial_engine = QueryEngine(graph)
    # Warm both engines on the base batch so the sweep times query
    # answering, not the one-off core decomposition and bundle builds.
    planned_engine.search_many(base, k, algorithm="appfast", epsilon_f=epsilon_f)
    serial_engine.search_many(
        base, k, algorithm="appfast", plan=False, epsilon_f=epsilon_f
    )
    executor = ShardedExecutor(QueryEngine(graph), workers=workers)
    service = SACService(graph, workers=workers)

    rows = []
    identical = True
    speedup_by_factor = {}
    for factor in factors:
        batch = [query for _ in range(factor) for query in base]

        start = time.perf_counter()
        planned = planned_engine.search_many(
            batch, k, algorithm="appfast", epsilon_f=epsilon_f
        )
        planned_time = time.perf_counter() - start

        start = time.perf_counter()
        serial = serial_engine.search_many(
            batch, k, algorithm="appfast", plan=False, epsilon_f=epsilon_f
        )
        serial_time = time.perf_counter() - start

        sharded = executor.run(
            batch, k, algorithm="appfast", epsilon_f=epsilon_f
        ).results
        cached = service.submit_batch(
            batch, k, algorithm="appfast", epsilon_f=epsilon_f
        ).results

        matches = _sweep_variants_identical(planned, serial, sharded, cached)
        identical &= matches
        speedup = serial_time / planned_time if planned_time > 0 else float("inf")
        speedup_by_factor[factor] = speedup
        rows.append(
            {
                "dataset": dataset_name,
                "factor": factor,
                "batch": len(batch),
                "planned_perquery_ms": round(planned_time / len(batch) * 1000.0, 4),
                "perquery_ms": round(serial_time / len(batch) * 1000.0, 4),
                "plan_speedup": round(speedup, 2),
                "identical": matches,
            }
        )
    executor.close()
    service.close()

    stats = planned_engine.stats
    counters = {
        "batches_planned": stats.batches_planned,
        "plan_groups": stats.plan_groups,
        "queries_deduped": stats.queries_deduped,
        "queries_factorised": stats.queries_factorised,
    }
    largest = max(factors)
    superlinear = speedup_by_factor[largest] > largest
    return rows, identical, counters, superlinear


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke workload")
    parser.add_argument(
        "--overlap-sweep",
        action="store_true",
        help="sweep batch-overlap factors through the factorised planner "
        "instead of running the three-path serving benchmark",
    )
    parser.add_argument(
        "--overlap-factors",
        default="1,2,4,8",
        help="comma-separated duplication factors for --overlap-sweep",
    )
    parser.add_argument(
        "--overlap-queries",
        type=int,
        default=None,
        help="base (distinct) queries per --overlap-sweep batch",
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale multiplier")
    parser.add_argument("--queries", type=int, default=None, help="queries per batch")
    parser.add_argument("--rounds", type=int, default=None, help="repeat rounds per batch")
    parser.add_argument("--workers", type=int, default=4, help="process-pool size")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--epsilon-f", type=float, default=0.5)
    parser.add_argument(
        "--datasets",
        default="brightkite,gowalla,syn1",
        help="comma-separated registry dataset names",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 2.0)
    queries = args.queries if args.queries is not None else (16 if args.quick else 48)
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 4)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]

    if args.overlap_sweep:
        factors = sorted(
            {int(part) for part in args.overlap_factors.split(",") if part.strip()}
        )
        base_queries = (
            args.overlap_queries
            if args.overlap_queries is not None
            else (12 if args.quick else 32)
        )
        dataset = names[0]
        print(
            f"batch-overlap sweep: dataset={dataset} scale={scale} "
            f"base_queries={base_queries} factors={factors} workers={args.workers} "
            f"k={args.k}"
        )
        rows, identical, counters, superlinear = run_overlap_sweep(
            dataset,
            scale=scale,
            base_queries=base_queries,
            factors=factors,
            k=args.k,
            epsilon_f=args.epsilon_f,
            workers=args.workers,
        )
        write_result(
            "sharded_batch_overlap",
            "Batch-overlap sweep: factorised plan vs per-query path",
            rows,
            extra={
                "counters": counters,
                "largest_factor": max(factors),
                "superlinear": superlinear,
            },
        )
        if not identical:
            print("FAIL: execution paths returned diverging results", file=sys.stderr)
            return 1
        if not rows:
            print("FAIL: sweep produced no measurements", file=sys.stderr)
            return 1
        if counters["queries_factorised"] == 0 or counters["queries_deduped"] == 0:
            print(
                f"FAIL: plan factorisation counters stayed zero: {counters}",
                file=sys.stderr,
            )
            return 1
        status = "superlinear" if superlinear else "NOT superlinear (machine-dependent)"
        largest = max(factors)
        print(
            f"overlap sweep: plan speedup {rows[-1]['plan_speedup']}x at factor "
            f"{largest} — per-query cost drop {status}; counters {counters}"
        )
        return 0

    print(
        f"sharded batch benchmark: datasets={names} scale={scale} queries={queries} "
        f"rounds={rounds} workers={args.workers} k={args.k}"
    )
    rows, identical = run_benchmark(
        names,
        scale=scale,
        queries_per_dataset=queries,
        k=args.k,
        epsilon_f=args.epsilon_f,
        rounds=rounds,
        workers=args.workers,
    )
    write_result(
        "sharded_batch",
        "Serving-layer batch throughput (serial vs sharded vs cached service)",
        rows,
    )
    if not identical:
        print("FAIL: execution paths returned diverging results", file=sys.stderr)
        return 1
    overall = next((r for r in rows if r["dataset"] == "OVERALL"), None)
    if overall is not None:
        target = "met" if overall["service_speedup"] >= 2.0 else "NOT met (machine-dependent)"
        print(
            f"overall: sharded {overall['sharded_speedup']}x, "
            f"service {overall['service_speedup']}x vs serial "
            f"({overall['service_qps']} q/s) — >=2x target {target}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
