"""Sharded + cached batch serving benchmark vs. the serial engine path.

Models the paper's Table-4-style serving scenario: the same batch of popular
query vertices is answered repeatedly (applications re-query every refresh).
Three execution paths answer the identical workload:

* **serial** — one :class:`repro.engine.QueryEngine`, every query answered
  in-process, every round recomputed (the pre-service state of the art);
* **sharded** — :class:`repro.service.ShardedExecutor` with a process pool,
  batches partitioned by k-ĉore component, no answer cache;
* **service** — :class:`repro.service.SACService` with the pool *and* the
  persistent answer cache, so repeat rounds are served from cache.

All three must return bit-identical results (member sets, circle floats,
stats) — the benchmark exits non-zero if they ever diverge.  Throughput is
reported per path; the headline ``service`` speedup comes from sharding on
multi-core machines plus cache hits on repeat rounds, and the benchmark
prints whether the ≥2× target over the serial path was met.

Run standalone::

    python benchmarks/bench_sharded_batch.py                 # full workload
    python benchmarks/bench_sharded_batch.py --quick         # CI smoke
    python benchmarks/bench_sharded_batch.py --workers 4 --rounds 4
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine
from repro.experiments.queries import select_query_vertices
from repro.service import SACService, ShardedExecutor


def _identical(first, second) -> bool:
    """Bitwise comparison of two SACResults (members, circle, stats)."""
    return (
        first.members == second.members
        and first.circle.radius == second.circle.radius
        and first.circle.center.x == second.circle.center.x
        and first.circle.center.y == second.circle.center.y
        and first.stats == second.stats
    )


def _time_serial(graph, queries, k, rounds, epsilon_f):
    """Serial engine path: recompute every query every round."""
    engine = QueryEngine(graph)
    results = {}
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            results[query] = engine.search(
                query, k, algorithm="appfast", epsilon_f=epsilon_f
            )
    return results, time.perf_counter() - start


def _time_sharded(graph, queries, k, rounds, epsilon_f, workers):
    """Sharded pool path, cache off: every round pays the pool."""
    executor = ShardedExecutor(QueryEngine(graph), workers=workers)
    results = {}
    start = time.perf_counter()
    for _ in range(rounds):
        batch = executor.run(queries, k, algorithm="appfast", epsilon_f=epsilon_f)
        results.update(batch.results)
    elapsed = time.perf_counter() - start
    executor.close()
    return results, elapsed, executor.stats


def _time_service(graph, queries, k, rounds, epsilon_f, workers):
    """Full serving layer: pool + persistent answer cache across rounds."""
    service = SACService(graph, workers=workers)
    results = {}
    cache_hits = 0
    start = time.perf_counter()
    for _ in range(rounds):
        batch = service.submit_batch(queries, k, algorithm="appfast", epsilon_f=epsilon_f)
        results.update(batch.results)
        cache_hits += batch.cache_hits
    elapsed = time.perf_counter() - start
    service.close()
    return results, elapsed, cache_hits


def run_benchmark(dataset_names, *, scale, queries_per_dataset, k, epsilon_f, rounds, workers):
    """Time the three paths per dataset; returns ``(rows, all_identical)``."""
    rows = []
    identical = True
    totals = {"queries": 0, "serial": 0.0, "sharded": 0.0, "service": 0.0}

    for name in dataset_names:
        graph = load_dataset(name, scale=scale)
        queries = select_query_vertices(
            graph, count=queries_per_dataset, min_core=k, seed=9
        )
        if not queries:
            print(f"  {name}: no queries with core number >= {k}, skipped")
            continue
        total_queries = len(queries) * rounds

        serial_results, serial_time = _time_serial(graph, queries, k, rounds, epsilon_f)
        sharded_results, sharded_time, _stats = _time_sharded(
            graph, queries, k, rounds, epsilon_f, workers
        )
        service_results, service_time, cache_hits = _time_service(
            graph, queries, k, rounds, epsilon_f, workers
        )

        matches = set(serial_results) == set(sharded_results) == set(service_results)
        if matches:
            matches = all(
                _identical(serial_results[q], sharded_results[q])
                and _identical(serial_results[q], service_results[q])
                for q in serial_results
            )
        identical &= matches
        totals["queries"] += total_queries
        totals["serial"] += serial_time
        totals["sharded"] += sharded_time
        totals["service"] += service_time
        rows.append(
            {
                "dataset": name,
                "vertices": graph.num_vertices,
                "queries": total_queries,
                "serial_qps": round(total_queries / serial_time, 2),
                "sharded_qps": round(total_queries / sharded_time, 2),
                "service_qps": round(total_queries / service_time, 2),
                "sharded_speedup": round(serial_time / sharded_time, 2),
                "service_speedup": round(serial_time / service_time, 2),
                "cache_hits": cache_hits,
                "identical": matches,
            }
        )

    if totals["service"] > 0:
        rows.append(
            {
                "dataset": "OVERALL",
                "vertices": "",
                "queries": totals["queries"],
                "serial_qps": round(totals["queries"] / totals["serial"], 2),
                "sharded_qps": round(totals["queries"] / totals["sharded"], 2),
                "service_qps": round(totals["queries"] / totals["service"], 2),
                "sharded_speedup": round(totals["serial"] / totals["sharded"], 2),
                "service_speedup": round(totals["serial"] / totals["service"], 2),
                "cache_hits": "",
                "identical": identical,
            }
        )
    return rows, identical


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke workload")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale multiplier")
    parser.add_argument("--queries", type=int, default=None, help="queries per batch")
    parser.add_argument("--rounds", type=int, default=None, help="repeat rounds per batch")
    parser.add_argument("--workers", type=int, default=4, help="process-pool size")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--epsilon-f", type=float, default=0.5)
    parser.add_argument(
        "--datasets",
        default="brightkite,gowalla,syn1",
        help="comma-separated registry dataset names",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 2.0)
    queries = args.queries if args.queries is not None else (16 if args.quick else 48)
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 4)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]

    print(
        f"sharded batch benchmark: datasets={names} scale={scale} queries={queries} "
        f"rounds={rounds} workers={args.workers} k={args.k}"
    )
    rows, identical = run_benchmark(
        names,
        scale=scale,
        queries_per_dataset=queries,
        k=args.k,
        epsilon_f=args.epsilon_f,
        rounds=rounds,
        workers=args.workers,
    )
    write_result(
        "sharded_batch",
        "Serving-layer batch throughput (serial vs sharded vs cached service)",
        rows,
    )
    if not identical:
        print("FAIL: execution paths returned diverging results", file=sys.stderr)
        return 1
    overall = next((r for r in rows if r["dataset"] == "OVERALL"), None)
    if overall is not None:
        target = "met" if overall["service_speedup"] >= 2.0 else "NOT met (machine-dependent)"
        print(
            f"overall: sharded {overall['sharded_speedup']}x, "
            f"service {overall['service_speedup']}x vs serial "
            f"({overall['service_qps']} q/s) — >=2x target {target}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
