"""Figure 11 — sensitivity of θ-SAC search to the user-supplied radius θ.

Two panels:

* (a) the percentage of queries that return a non-empty community, as θ
  sweeps over Table 5's values — tiny θ answers almost nothing, huge θ
  answers everything;
* (b) for the answered queries, the average MCC radius of the θ-SAC result
  compared with the radius found by ``Exact+`` — the paper reports θ-SAC
  circles 5–10× larger than Exact+.

A third series reproduces the §5.2.2 "radius-only" observation: taking every
vertex inside ``O(q, θ)`` with no structural requirement yields an average
internal degree far below 1.
"""

from __future__ import annotations

import pytest

from bench_common import QUALITY_DATASETS, write_result
from repro.baselines.radius_only import average_internal_degree, radius_only_community
from repro.core.exact_plus import exact_plus
from repro.core.theta import theta_sac
from repro.exceptions import NoCommunityError
from repro.experiments.sweeps import DEFAULT_SWEEPS

K_DEFAULT = 4

#: The paper sweeps θ over absolute values in the normalised unit square.  On
#: the scaled-down stand-ins the same absolute values are used, plus two
#: larger ones so the "percentage answered" curve reaches 100%.
THETA_VALUES = tuple(DEFAULT_SWEEPS["theta"].values) + (1e-1, 2.0)


@pytest.mark.benchmark(group="fig11")
def test_fig11a_percentage_of_nonempty_queries(benchmark, datasets, workloads):
    """Figure 11(a): fraction of theta-SAC queries that find a community."""
    def run():
        rows = []
        for name in QUALITY_DATASETS:
            graph = datasets[name]
            queries = workloads[name]
            for theta in THETA_VALUES:
                answered = 0
                for query in queries:
                    if theta_sac(graph, query, K_DEFAULT, theta) is not None:
                        answered += 1
                rows.append(
                    {
                        "dataset": name,
                        "theta": theta,
                        "percentage_nonempty": 100.0 * answered / max(1, len(queries)),
                        "queries": len(queries),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig11a_theta_percentage", "Figure 11(a): % of queries answered by theta-SAC", rows)

    for name in QUALITY_DATASETS:
        series = [row for row in rows if row["dataset"] == name]
        series.sort(key=lambda row: row["theta"])
        values = [row["percentage_nonempty"] for row in series]
        # Monotone non-decreasing in theta, low at the small end, 100% at the top.
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] <= values[-1]
        assert values[-1] == pytest.approx(100.0)


@pytest.mark.benchmark(group="fig11")
def test_fig11b_radius_of_theta_sac_vs_exact_plus(benchmark, datasets, workloads):
    """Figure 11(b): theta-SAC radius against the unconstrained Exact+ radius."""
    def run():
        rows = []
        for name in QUALITY_DATASETS:
            graph = datasets[name]
            queries = workloads[name]
            exact_radii = {}
            for query in queries:
                try:
                    exact_radii[query] = exact_plus(graph, query, K_DEFAULT, epsilon_a=1e-2).radius
                except NoCommunityError:
                    continue
            for theta in THETA_VALUES:
                theta_radii = []
                matched_exact = []
                for query, optimal in exact_radii.items():
                    result = theta_sac(graph, query, K_DEFAULT, theta)
                    if result is None:
                        continue
                    theta_radii.append(result.radius)
                    matched_exact.append(optimal)
                if not theta_radii:
                    continue
                rows.append(
                    {
                        "dataset": name,
                        "theta": theta,
                        "theta_sac_radius": sum(theta_radii) / len(theta_radii),
                        "exact_plus_radius": sum(matched_exact) / len(matched_exact),
                        "ratio": (sum(theta_radii) / len(theta_radii))
                        / max(1e-12, sum(matched_exact) / len(matched_exact)),
                        "answered": len(theta_radii),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig11b_theta_radius", "Figure 11(b): theta-SAC radius vs Exact+", rows)

    # For every answered configuration the theta-SAC radius is at least the
    # optimal radius, and for generous theta it is strictly larger on average.
    assert rows
    for row in rows:
        assert row["theta_sac_radius"] >= row["exact_plus_radius"] - 1e-9
    generous = [row for row in rows if row["theta"] >= 0.1]
    assert any(row["ratio"] > 1.2 for row in generous)


@pytest.mark.benchmark(group="fig11")
def test_fig11_extra_radius_only_average_degree(benchmark, datasets, workloads):
    """Strawman check: average internal degree of radius-only "communities"."""
    def run():
        rows = []
        for name in QUALITY_DATASETS:
            graph = datasets[name]
            queries = workloads[name]
            for theta in (1e-6, 1e-5, 1e-4):
                degrees = [
                    average_internal_degree(graph, radius_only_community(graph, query, theta))
                    for query in queries
                ]
                rows.append(
                    {
                        "dataset": name,
                        "theta": theta,
                        "avg_internal_degree": sum(degrees) / max(1, len(degrees)),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "fig11_extra_radius_only",
        "Section 5.2.2: average degree of radius-only pseudo-communities",
        rows,
    )
    # Locations alone do not make a community: average degree stays far below k.
    for row in rows:
        assert row["avg_internal_degree"] < K_DEFAULT
