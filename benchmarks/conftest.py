"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on
scaled-down stand-in datasets (see ``repro.datasets.registry``).  Datasets
and query workloads are session-scoped so the generation cost is paid once,
and every benchmark writes the table it produces to
``benchmarks/results/<name>.txt`` so the numbers can be quoted in
EXPERIMENTS.md.

Scale knobs
-----------
The environment variable ``REPRO_BENCH_SCALE`` (default ``1.0``) multiplies
the stand-in dataset sizes; ``REPRO_BENCH_QUERIES`` (default ``12``) sets the
number of query vertices per measurement point.  Increase both to push the
harness towards paper-scale runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.datasets.registry import load_dataset
from repro.experiments.queries import select_query_vertices
from repro.experiments.tables import format_table
from repro.graph.spatial_graph import SpatialGraph

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "8"))

#: Datasets used by the quality and efficiency benchmarks.  The paper uses
#: Brightkite/Gowalla for quality and all six for efficiency; here the two
#: families (geo-social and power-law synthetic) are each represented by
#: their smaller members so the whole harness runs in minutes.
QUALITY_DATASETS = ("brightkite", "gowalla")
EFFICIENCY_DATASETS = ("brightkite", "syn1")


def write_result(name: str, title: str, rows: List[Dict[str, object]]) -> str:
    """Render ``rows`` as a table, write it under ``benchmarks/results``, return it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table = format_table(rows)
    text = f"{title}\n{'=' * len(title)}\n{table}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    print(f"\n{text}")
    return text


@pytest.fixture(scope="session")
def datasets() -> Dict[str, SpatialGraph]:
    """Scaled-down stand-ins for every dataset of Table 4."""
    graphs: Dict[str, SpatialGraph] = {}
    for name, scale in (
        ("brightkite", 0.5),
        ("gowalla", 0.35),
        ("flickr", 0.35),
        ("foursquare", 0.25),
        ("syn1", 0.65),
        ("syn2", 0.3),
    ):
        graphs[name] = load_dataset(name, scale=scale * BENCH_SCALE)
    return graphs


@pytest.fixture(scope="session")
def workloads(datasets) -> Dict[str, List[int]]:
    """Query vertices with core number >= 4 for every dataset (paper Section 5.1)."""
    result: Dict[str, List[int]] = {}
    for name, graph in datasets.items():
        result[name] = select_query_vertices(graph, count=BENCH_QUERIES, min_core=4, seed=7)
    return result
