"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on
scaled-down stand-in datasets (see ``repro.datasets.registry``).  Datasets
and query workloads are session-scoped so the generation cost is paid once,
and every benchmark writes the table it produces to
``benchmarks/results/<name>.txt`` so the numbers can be quoted in
EXPERIMENTS.md.

Constants and the ``write_result`` helper live in :mod:`bench_common`; import
them from there (never from ``conftest``) so collection alongside ``tests/``
stays unambiguous.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from bench_common import BENCH_QUERIES, BENCH_SCALE
from repro.datasets.registry import load_dataset
from repro.experiments.queries import select_query_vertices
from repro.graph.spatial_graph import SpatialGraph


@pytest.fixture(scope="session")
def datasets() -> Dict[str, SpatialGraph]:
    """Scaled-down stand-ins for every dataset of Table 4."""
    graphs: Dict[str, SpatialGraph] = {}
    for name, scale in (
        ("brightkite", 0.5),
        ("gowalla", 0.35),
        ("flickr", 0.35),
        ("foursquare", 0.25),
        ("syn1", 0.65),
        ("syn2", 0.3),
    ):
        graphs[name] = load_dataset(name, scale=scale * BENCH_SCALE)
    return graphs


@pytest.fixture(scope="session")
def workloads(datasets) -> Dict[str, List[int]]:
    """Query vertices with core number >= 4 for every dataset (paper Section 5.1)."""
    result: Dict[str, List[int]] = {}
    for name, graph in datasets.items():
        result[name] = select_query_vertices(graph, count=BENCH_QUERIES, min_core=4, seed=7)
    return result
