"""Online serving benchmark: micro-batched concurrent vs sequential requests.

Models the ROADMAP's live-traffic scenario against one running
:class:`repro.server.SACServer`.  The same set of distinct queries is
answered over HTTP two ways:

* **sequential** — one client, one query per request, each awaited before
  the next is sent (the no-coalescing baseline: every request pays the full
  micro-batch linger plus its own dispatch);
* **concurrent** — the same queries fired from many client threads at once,
  so the daemon coalesces them into micro-batches and dispatches whole
  groups through :meth:`repro.service.SACService.submit_batch`, amortising
  linger and per-dispatch overhead across the batch.

The server runs with the answer cache **disabled** so both passes measure
computation, not cache hits, and the concurrent pass runs first so neither
inherits warmth the other lacked (engine artifacts are pre-warmed for both).
Every HTTP answer is compared field-by-field (members, radius, centre)
against a serial :class:`repro.engine.QueryEngine` answering the identical
queries in-process — the responses must be **bit-identical** (JSON float
round-tripping is exact for IEEE doubles), and the benchmark exits non-zero
if they ever diverge.  The headline number is the concurrent/sequential
throughput ratio; the ≥2× target is what ``docs/serving.md``'s
capacity-planning section cites.

Run standalone::

    python benchmarks/bench_server_latency.py            # full workload
    python benchmarks/bench_server_latency.py --quick    # CI smoke
    python benchmarks/bench_server_latency.py --workers 4 --threads 16
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine
from repro.experiments.queries import select_query_vertices
from repro.server import SACClient, ServerConfig, start_in_thread
from repro.server.client import parallel_queries
from repro.service import SACService


def _expected_payload(graph, result) -> dict:
    """The JSON fields a correct server response must carry for ``result``."""
    return {
        "found": True,
        "size": result.size,
        "radius": result.circle.radius,
        "center": [result.circle.center.x, result.circle.center.y],
        "members": [graph.label_of(v) for v in sorted(result.members)],
    }


def _matches(response: dict, expected: dict) -> bool:
    """Exact comparison of one HTTP answer against the serial engine's."""
    return all(response.get(field) == value for field, value in expected.items())


def _time_sequential(address, jobs):
    """One connection, one query per request, strictly serialised."""
    responses = []
    client = SACClient(address[0], address[1])
    start = time.perf_counter()
    for job in jobs:
        responses.append(client.query(**job))
    elapsed = time.perf_counter() - start
    client.close()
    return responses, elapsed


def _time_concurrent(address, jobs, threads):
    """Many connections at once: the daemon coalesces into micro-batches."""
    start = time.perf_counter()
    responses = parallel_queries(address, jobs, threads=threads)
    return responses, time.perf_counter() - start


def run_benchmark(dataset_names, *, scale, queries_per_dataset, k, epsilon_f, threads, workers, linger_ms):
    """Benchmark each dataset's server; returns ``(rows, all_identical)``."""
    rows = []
    identical = True
    totals = {"queries": 0, "sequential": 0.0, "concurrent": 0.0}

    for name in dataset_names:
        graph = load_dataset(name, scale=scale)
        queries = select_query_vertices(
            graph, count=queries_per_dataset, min_core=k, seed=11
        )
        if not queries:
            print(f"  {name}: no queries with core number >= {k}, skipped")
            continue

        # The in-process reference: the serial engine path the server's
        # answers must be bit-identical to.
        reference = QueryEngine(graph)
        expected = {
            query: _expected_payload(
                graph, reference.search(query, k, algorithm="appfast", epsilon_f=epsilon_f)
            )
            for query in queries
        }
        jobs = [
            {
                "vertex": graph.label_of(query),
                "k": k,
                "algorithm": "appfast",
                "params": {"epsilon_f": epsilon_f},
            }
            for query in queries
        ]

        service = SACService(graph, workers=workers or None, use_cache=False)
        service.warm(k)  # both passes start from warm engine artifacts
        handle = start_in_thread(
            service,
            ServerConfig(port=0, max_linger_ms=linger_ms),
        )
        try:
            address = (handle.host, handle.port)
            concurrent_responses, concurrent_time = _time_concurrent(address, jobs, threads)
            # Snapshot the batcher before the sequential pass dilutes it
            # with its size-1 batches.
            stats = handle.server.batcher_stats
            dispatched = stats.batches_dispatched
            mean_batch = stats.queries_coalesced / dispatched if dispatched else 0.0
            sequential_responses, sequential_time = _time_sequential(address, jobs)
        finally:
            handle.stop()

        matches = len(concurrent_responses) == len(queries) and all(
            _matches(response, expected[query])
            for query, response in zip(queries, concurrent_responses)
        ) and all(
            _matches(response, expected[query])
            for query, response in zip(queries, sequential_responses)
        )
        identical &= matches
        totals["queries"] += len(queries)
        totals["sequential"] += sequential_time
        totals["concurrent"] += concurrent_time
        rows.append(
            {
                "dataset": name,
                "vertices": graph.num_vertices,
                "queries": len(queries),
                "sequential_qps": round(len(queries) / sequential_time, 2),
                "concurrent_qps": round(len(queries) / concurrent_time, 2),
                "speedup": round(sequential_time / concurrent_time, 2),
                "mean_batch": round(mean_batch, 2),
                "identical": matches,
            }
        )

    if totals["concurrent"] > 0:
        rows.append(
            {
                "dataset": "OVERALL",
                "vertices": "",
                "queries": totals["queries"],
                "sequential_qps": round(totals["queries"] / totals["sequential"], 2),
                "concurrent_qps": round(totals["queries"] / totals["concurrent"], 2),
                "speedup": round(totals["sequential"] / totals["concurrent"], 2),
                "mean_batch": "",
                "identical": identical,
            }
        )
    return rows, identical


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke workload")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale multiplier")
    parser.add_argument("--queries", type=int, default=None, help="queries per dataset")
    parser.add_argument("--threads", type=int, default=16, help="concurrent client threads")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="server-side process-pool size (0 = serial execution inside the daemon)",
    )
    parser.add_argument("--linger-ms", type=float, default=5.0, help="server micro-batch linger")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--epsilon-f", type=float, default=0.5)
    parser.add_argument(
        "--datasets",
        default="brightkite,gowalla",
        help="comma-separated registry dataset names (geo-social stand-ins: "
        "the paper's serving scenario of many cheap per-user queries)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 1.0)
    queries = args.queries if args.queries is not None else (24 if args.quick else 96)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]

    print(
        f"server latency benchmark: datasets={names} scale={scale} queries={queries} "
        f"threads={args.threads} workers={args.workers} linger={args.linger_ms}ms k={args.k}"
    )
    rows, identical = run_benchmark(
        names,
        scale=scale,
        queries_per_dataset=queries,
        k=args.k,
        epsilon_f=args.epsilon_f,
        threads=args.threads,
        workers=args.workers,
        linger_ms=args.linger_ms,
    )
    write_result(
        "server_latency",
        "Online serving throughput (micro-batched concurrent vs sequential HTTP)",
        rows,
    )
    if not identical:
        print("FAIL: server responses diverged from the serial engine path", file=sys.stderr)
        return 1
    overall = next((r for r in rows if r["dataset"] == "OVERALL"), None)
    if overall is not None:
        target = "met" if overall["speedup"] >= 2.0 else "NOT met (machine-dependent)"
        print(
            f"overall: concurrent {overall['concurrent_qps']} q/s vs sequential "
            f"{overall['sequential_qps']} q/s — {overall['speedup']}x, >=2x target {target}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
