"""Engine throughput benchmark: shared-preprocessing engine vs. seed path.

Measures queries/sec for the :class:`repro.engine.QueryEngine` against the
seed per-query API (every query rebuilds the core decomposition, k-ĉore
extraction, and candidate grid index from scratch) on the synthetic dataset
stand-ins of Table 4, and verifies that the two paths return bit-identical
results (same member sets, same MCC radii and centres).

The workload uses AppFast — the paper's recommended algorithm for serving
queries on large graphs — which is exactly the regime the engine targets:
many queries against one graph, each needing the shared artifacts plus a
handful of feasibility probes.

Run standalone::

    python benchmarks/bench_engine_throughput.py            # full workload
    python benchmarks/bench_engine_throughput.py --quick    # CI smoke (~15 s)

Exits non-zero when engine results diverge from the seed path.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

from bench_common import write_result
from repro.core.searcher import ALGORITHMS
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine
from repro.experiments.queries import select_query_vertices


def run_benchmark(
    dataset_names,
    *,
    scale: float,
    queries_per_dataset: int,
    k: int,
    epsilon_f: float,
    repeats: int,
) -> tuple[list[dict], bool]:
    """Time seed vs. engine on each dataset; returns (rows, all_identical)."""
    algorithm = ALGORITHMS["appfast"]
    rows: list[dict] = []
    identical = True
    total_seed = 0.0
    total_engine = 0.0
    total_queries = 0

    for name in dataset_names:
        graph = load_dataset(name, scale=scale)
        queries = select_query_vertices(
            graph, count=queries_per_dataset, min_core=k, seed=9
        )
        if not queries:
            print(f"  {name}: no queries with core number >= {k}, skipped")
            continue

        best_seed = float("inf")
        best_engine = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            seed_results = [algorithm(graph, q, k, epsilon_f=epsilon_f) for q in queries]
            best_seed = min(best_seed, time.perf_counter() - start)

            start = time.perf_counter()
            engine = QueryEngine(graph)  # construction included: cold engine
            engine_results = [
                engine.search(q, k, algorithm="appfast", epsilon_f=epsilon_f)
                for q in queries
            ]
            best_engine = min(best_engine, time.perf_counter() - start)

        matches = all(
            a.members == b.members
            and a.circle.radius == b.circle.radius
            and a.circle.center.x == b.circle.center.x
            and a.circle.center.y == b.circle.center.y
            for a, b in zip(seed_results, engine_results)
        )
        identical &= matches
        total_seed += best_seed
        total_engine += best_engine
        total_queries += len(queries)
        rows.append(
            {
                "dataset": name,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "queries": len(queries),
                "seed_qps": round(len(queries) / best_seed, 2),
                "engine_qps": round(len(queries) / best_engine, 2),
                "speedup": round(best_seed / best_engine, 2),
                "identical": matches,
            }
        )

    if total_engine > 0:
        rows.append(
            {
                "dataset": "OVERALL",
                "vertices": "",
                "edges": "",
                "queries": total_queries,
                "seed_qps": round(total_queries / total_seed, 2),
                "engine_qps": round(total_queries / total_engine, 2),
                "speedup": round(total_seed / total_engine, 2),
                "identical": identical,
            }
        )
    return rows, identical


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI smoke workload (~15 s)"
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale multiplier")
    parser.add_argument("--queries", type=int, default=None, help="queries per dataset")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--epsilon-f", type=float, default=0.5)
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument(
        "--datasets",
        default="brightkite,gowalla,syn1",
        help="comma-separated registry dataset names",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.5 if args.quick else 2.0)
    queries = args.queries if args.queries is not None else (12 if args.quick else 48)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 2)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]

    print(
        f"engine throughput benchmark: datasets={names} scale={scale} "
        f"queries={queries} k={args.k} epsilon_f={args.epsilon_f}"
    )
    rows, identical = run_benchmark(
        names,
        scale=scale,
        queries_per_dataset=queries,
        k=args.k,
        epsilon_f=args.epsilon_f,
        repeats=repeats,
    )
    write_result(
        "engine_throughput",
        "Engine vs. seed path throughput (AppFast workload)",
        rows,
    )
    if not identical:
        print("FAIL: engine results diverge from the seed per-query path", file=sys.stderr)
        return 1
    overall = next((r for r in rows if r["dataset"] == "OVERALL"), None)
    if overall is not None:
        print(f"overall speedup: {overall['speedup']}x ({overall['engine_qps']} q/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
