"""Figure 9 — theoretical versus actual approximation ratios.

For AppFast the theoretical ratio is ``2 + eps_f`` (eps_f swept over Table 5's
values); for AppAcc it is ``1 + eps_a``.  The actual ratio is the radius of
the returned community's MCC divided by the optimal radius found by Exact+.
The paper's observation — actual ratios are far below the theoretical bounds
(AppFast stays around 1–2, AppAcc around 1.0–1.1) — should reproduce here.
"""

from __future__ import annotations

import pytest

from bench_common import QUALITY_DATASETS, write_result
from repro.core.appacc import app_acc
from repro.core.appfast import app_fast
from repro.core.exact_plus import exact_plus
from repro.exceptions import NoCommunityError
from repro.experiments.sweeps import DEFAULT_SWEEPS
from repro.metrics.ratio import approximation_ratio

K_DEFAULT = 4


def _optimal_radii(graph, queries):
    """Exact optimal radius per query (computed once and reused for every sweep value)."""
    radii = {}
    for query in queries:
        try:
            radii[query] = exact_plus(graph, query, K_DEFAULT, epsilon_a=1e-2).radius
        except NoCommunityError:
            continue
    return radii


def _actual_ratios(graph, optimal_radii, run_algorithm):
    ratios = []
    for query, optimal in optimal_radii.items():
        try:
            approx = run_algorithm(graph, query)
        except NoCommunityError:
            continue
        ratios.append(approximation_ratio(approx.radius, optimal))
    return ratios


@pytest.mark.benchmark(group="fig09")
def test_fig09a_appfast_ratio(benchmark, datasets, workloads):
    """Figure 9(a): AppFast approximation ratio as epsilon_f varies."""
    def run():
        rows = []
        for name in QUALITY_DATASETS:
            graph = datasets[name]
            optimal_radii = _optimal_radii(graph, workloads[name])
            for epsilon_f in DEFAULT_SWEEPS["epsilon_f"].values:
                ratios = _actual_ratios(
                    graph,
                    optimal_radii,
                    lambda g, q, eps=epsilon_f: app_fast(g, q, K_DEFAULT, eps),
                )
                if not ratios:
                    continue
                rows.append(
                    {
                        "dataset": name,
                        "epsilon_f": epsilon_f,
                        "theoretical_ratio": 2.0 + epsilon_f,
                        "actual_ratio": sum(ratios) / len(ratios),
                        "max_actual": max(ratios),
                        "queries": len(ratios),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig09a_appfast_ratio", "Figure 9(a): AppFast approximation ratio", rows)
    assert rows
    for row in rows:
        # The actual ratio never exceeds the theoretical guarantee.
        assert row["max_actual"] <= row["theoretical_ratio"] + 1e-9
        # And, as in the paper, it is usually far smaller.
        assert row["actual_ratio"] <= row["theoretical_ratio"]


@pytest.mark.benchmark(group="fig09")
def test_fig09b_appacc_ratio(benchmark, datasets, workloads):
    """Figure 9(b): AppAcc approximation ratio as epsilon_a varies."""
    def run():
        rows = []
        for name in QUALITY_DATASETS:
            graph = datasets[name]
            optimal_radii = _optimal_radii(graph, workloads[name])
            for epsilon_a in DEFAULT_SWEEPS["epsilon_a"].values:
                ratios = _actual_ratios(
                    graph,
                    optimal_radii,
                    lambda g, q, eps=epsilon_a: app_acc(g, q, K_DEFAULT, eps),
                )
                if not ratios:
                    continue
                rows.append(
                    {
                        "dataset": name,
                        "epsilon_a": epsilon_a,
                        "theoretical_ratio": 1.0 + epsilon_a,
                        "actual_ratio": sum(ratios) / len(ratios),
                        "max_actual": max(ratios),
                        "queries": len(ratios),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig09b_appacc_ratio", "Figure 9(b): AppAcc approximation ratio", rows)
    assert rows
    for row in rows:
        assert row["max_actual"] <= row["theoretical_ratio"] + 1e-9
        # AppAcc's actual ratio stays close to 1 (the paper reports <= 1.1).
        assert row["actual_ratio"] <= 1.2
