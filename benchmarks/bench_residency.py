"""Residency benchmark: serve ~million-vertex traffic under a memory budget.

Exercises :class:`repro.engine.residency.BundleResidency` at the scale it
exists for.  A synthetic **ring-lattice** graph (many 4-regular rings, each
one ``k=4`` ĉore component, spatially clustered so grids stay selective) is
built fully vectorised, snapshotted once, and then the same Zipf-skewed
query trace is replayed against the snapshot at three resident-byte
budgets: **unlimited**, **25 %**, and **5 %** of the fully-resident working
set.

Each budget runs in its **own subprocess** — ``ru_maxrss`` is a
process-wide high-water mark, so budgets must not share an address space or
the first (largest) run would mask every later one.  Per run the child
reports elapsed time, answer digest, residency counters, and its RSS growth
(peak minus post-import baseline).  The parent then enforces the layer's
three claims:

* **bit-identity** — every budget produces byte-for-byte the same answer
  stream (compared by SHA-256 digest);
* **throughput** — the starved 5 % run keeps >= 80 % of unlimited
  throughput (>= 30 % under ``--quick``, where the workload is too small to
  amortise process noise);
* **memory** — each budgeted run's RSS growth stays within ``budget +
  overhead + slack``, where *overhead* is measured from the unlimited run
  (its growth minus its resident-bundle bytes: graph pages, labellings,
  interpreter churn) rather than guessed.

Run standalone::

    python benchmarks/bench_residency.py            # ~1M vertices
    python benchmarks/bench_residency.py --quick    # CI smoke (~20k)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(1, str(_here.parent / "src"))  # uninstalled checkout fallback

import numpy as np

from bench_common import peak_rss_mb, write_result

#: Zipf skew of ring popularity (matches bench_slo_traffic's vertex skew).
ZIPF_S = 1.1

#: Serving parameters of the replay: one k, one algorithm, batched.
K = 4
ALGORITHM = "appfast"
EPSILON_F = 0.5
BATCH = 64

#: Fixed memory slack (MiB) on top of the measured overhead: allocator
#: fragmentation, transient widen-then-evict overshoot, result buffers.
SLACK_MB = 48.0

MIB = 1024.0 * 1024.0


def build_ring_lattice(vertices: int, rings: int, seed: int):
    """A spatially-clustered union of 4-regular rings, built as CSR directly.

    Every ring is one ``k=4`` ĉore component (each vertex joins ``i±1`` and
    ``i±2`` around its ring), so component count and sizes are exact knobs.
    Rings sit in their own cell of a coarse spatial grid with members
    scattered in a small disc, keeping per-component grids realistic.
    Building through :meth:`repro.graph.SpatialGraph.attach_arrays` avoids
    any per-edge Python loop — a builder replay at 10^6 vertices would
    dominate the whole benchmark.
    """
    from repro.graph.spatial_graph import SpatialGraph

    size = vertices // rings
    if size < 5:
        raise ValueError("rings must hold at least 5 vertices each")
    n = size * rings
    rng = np.random.default_rng(seed)

    # One ring's sorted neighbour pattern, tiled across all rings.
    local = np.arange(size, dtype=np.int64)[:, None]
    neighbours = np.sort((local + np.array([-2, -1, 1, 2])) % size, axis=1)
    offsets = np.arange(rings, dtype=np.int64) * size
    indices = (neighbours[None, :, :] + offsets[:, None, None]).reshape(-1)
    indptr = 4 * np.arange(n + 1, dtype=np.int64)

    # Ring r lives in cell (r % side, r // side) of a unit grid.
    side = int(np.ceil(np.sqrt(rings)))
    centers_x = (np.arange(rings) % side + 0.5) / side
    centers_y = (np.arange(rings) // side + 0.5) / side
    radius = 0.35 / side
    angle = rng.uniform(0.0, 2.0 * np.pi, size=n)
    rho = radius * np.sqrt(rng.uniform(0.0, 1.0, size=n))
    coords = np.empty((n, 2), dtype=np.float64)
    coords[:, 0] = np.repeat(centers_x, size) + rho * np.cos(angle)
    coords[:, 1] = np.repeat(centers_y, size) + rho * np.sin(angle)

    graph = SpatialGraph.attach_arrays(
        {
            "indptr": indptr,
            "indices32": indices.astype(np.int32),
            "indices64": indices,
            "coords": coords,
        }
    )
    return graph, size


def zipf_trace(queries: int, rings: int, ring_size: int, seed: int) -> np.ndarray:
    """Rank-weighted ring popularity, uniform member choice within a ring."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, rings + 1, dtype=np.float64)
    weights = ranks**-ZIPF_S
    weights /= weights.sum()
    popularity = rng.permutation(rings)  # which ring gets which rank
    chosen_rings = popularity[rng.choice(rings, size=queries, p=weights)]
    members = rng.integers(0, ring_size, size=queries)
    return (chosen_rings.astype(np.int64) * ring_size + members).astype(np.int64)


def _digest_result(hasher, query, result):
    if result is None:
        hasher.update(f"{query}:none\n".encode())
        return
    hasher.update(
        (
            f"{query}:{sorted(result.members)!r}:{result.circle.radius!r}:"
            f"{result.circle.center.x!r}:{result.circle.center.y!r}\n"
        ).encode()
    )


def run_child(store: str, trace_path: str, budget: int) -> int:
    """One serving process: replay the trace at one budget, report JSON."""
    from repro.engine import QueryEngine

    trace = np.load(trace_path)
    base_rss = peak_rss_mb() or 0.0
    engine = QueryEngine.from_store(store, max_resident_bytes=budget or None)
    hasher = hashlib.sha256()
    peak_resident = 0
    start = time.perf_counter()
    for begin in range(0, trace.size, BATCH):
        batch = [int(v) for v in trace[begin : begin + BATCH]]
        results = engine.search_many(
            batch, K, algorithm=ALGORITHM, epsilon_f=EPSILON_F
        )
        for query in batch:
            _digest_result(hasher, query, results[query])
        peak_resident = max(peak_resident, engine.stats.resident_bytes)
    elapsed = time.perf_counter() - start
    report = {
        "budget_bytes": budget,
        "elapsed_s": elapsed,
        "qps": trace.size / elapsed if elapsed > 0 else float("inf"),
        "digest": hasher.hexdigest(),
        "materialised": engine.stats.bundles_materialised,
        "evicted": engine.stats.bundles_evicted,
        "resident_bytes_final": engine.stats.resident_bytes,
        "resident_bytes_peak": peak_resident,
        "base_rss_mb": base_rss,
        "peak_rss_mb": peak_rss_mb() or 0.0,
    }
    print(json.dumps(report))
    return 0


def _spawn_child(store: Path, trace_path: Path, budget: int) -> dict:
    env = dict(os.environ)
    src = str(_here.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--child",
            "--store",
            str(store),
            "--trace",
            str(trace_path),
            "--budget",
            str(budget),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child (budget={budget}) failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_benchmark(*, vertices: int, rings: int, queries: int, seed: int, quick: bool):
    """Snapshot once, replay at three budgets, enforce the layer's claims."""
    from repro.engine import QueryEngine
    from repro.store import ArtifactStore

    rows = []
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        build_start = time.perf_counter()
        graph, ring_size = build_ring_lattice(vertices, rings, seed)
        engine = QueryEngine(graph)
        for component in range(engine.prepare(K)):
            engine.component_artifacts(K, component)
        store = Path(tmp) / "snapshot"
        ArtifactStore.save(store, engine)
        build_s = time.perf_counter() - build_start
        print(
            f"built + snapshotted {graph.num_vertices} vertices / {rings} rings "
            f"in {build_s:.1f}s ({ArtifactStore.open(store).nbytes() / MIB:.1f} MiB pack)"
        )
        del engine, graph

        trace_path = Path(tmp) / "trace.npy"
        np.save(trace_path, zipf_trace(queries, rings, ring_size, seed + 1))

        unlimited = _spawn_child(store, trace_path, 0)
        working_set = unlimited["resident_bytes_final"]
        overhead_mb = max(
            0.0,
            (unlimited["peak_rss_mb"] - unlimited["base_rss_mb"])
            - working_set / MIB,
        )
        print(
            f"unlimited: {unlimited['qps']:.0f} q/s, working set "
            f"{working_set / MIB:.1f} MiB, measured overhead {overhead_mb:.1f} MiB"
        )

        reports = {"unlimited": unlimited}
        for label, fraction in (("25%", 0.25), ("5%", 0.05)):
            budget = max(1, int(working_set * fraction))
            reports[label] = _spawn_child(store, trace_path, budget)

        for label, report in reports.items():
            budget = report["budget_bytes"]
            growth = report["peak_rss_mb"] - report["base_rss_mb"]
            identical = report["digest"] == unlimited["digest"]
            if not identical:
                problems.append(f"{label}: answers diverged from unlimited run")
            if budget:
                allowance = budget / MIB + overhead_mb + SLACK_MB
                if growth > allowance:
                    problems.append(
                        f"{label}: RSS growth {growth:.1f} MiB exceeds budget "
                        f"allowance {allowance:.1f} MiB"
                    )
            rows.append(
                {
                    "budget": label,
                    "budget_mb": round(budget / MIB, 1) if budget else 0.0,
                    "qps": round(report["qps"], 1),
                    "vs_unlimited": round(report["qps"] / unlimited["qps"], 3),
                    "materialised": report["materialised"],
                    "evicted": report["evicted"],
                    "resident_peak_mb": round(report["resident_bytes_peak"] / MIB, 2),
                    "rss_growth_mb": round(growth, 1),
                    "identical": identical,
                }
            )

        floor = 0.3 if quick else 0.8
        ratio = reports["5%"]["qps"] / unlimited["qps"]
        if ratio < floor:
            problems.append(
                f"5% budget throughput is {ratio:.2f}x unlimited, below the "
                f"{floor:.1f}x floor"
            )
        extra = {
            "vertices": vertices,
            "rings": rings,
            "queries": queries,
            "zipf_s": ZIPF_S,
            "working_set_mb": round(working_set / MIB, 1),
            "overhead_mb": round(overhead_mb, 1),
            "slack_mb": SLACK_MB,
        }
    return rows, extra, problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke workload")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--rings", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--store", help=argparse.SUPPRESS)
    parser.add_argument("--trace", help=argparse.SUPPRESS)
    parser.add_argument("--budget", type=int, default=0, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return run_child(args.store, args.trace, args.budget)

    vertices = args.vertices or (20_000 if args.quick else 1_000_000)
    rings = args.rings or (16 if args.quick else 64)
    queries = args.queries or (256 if args.quick else 2048)
    print(
        f"residency benchmark: {vertices} vertices in {rings} rings, "
        f"{queries} Zipf queries, k={K} {ALGORITHM}"
    )
    rows, extra, problems = run_benchmark(
        vertices=vertices,
        rings=rings,
        queries=queries,
        seed=args.seed,
        quick=args.quick,
    )
    write_result(
        "residency_budgets",
        "Zipf replay under resident-byte budgets (per-budget subprocesses)",
        rows,
        extra,
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        "overall: answers byte-identical across budgets; 5% budget keeps "
        f"{rows[-1]['vs_unlimited']:.2f}x of unlimited throughput"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
