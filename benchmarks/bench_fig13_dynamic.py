"""Figure 13 — adaptability of SAC search to location changes.

Replays a synthetic check-in stream over the Brightkite stand-in, re-queries
the SAC of the most mobile users at each of their check-ins, and reports the
average community Jaccard similarity (CJS) and community area overlap (CAO)
between snapshot pairs whose time gap is at least η days.

Expected shape (paper Figure 13): both curves decrease as η grows — the
longer the gap, the less the two communities overlap.
"""

from __future__ import annotations

import pytest

from bench_common import write_result
from repro.datasets.geosocial import CheckinGenerator, TravelProfile
from repro.dynamic.evaluation import overlap_vs_time_gap, select_mobile_queries
from repro.dynamic.stream import LocationStream
from repro.dynamic.tracker import SACTracker

ETA_DAYS = (0.25, 0.5, 1.0, 3.0, 5.0, 7.0, 10.0, 15.0)


@pytest.mark.benchmark(group="fig13")
def test_fig13_dynamic_overlap(benchmark, datasets):
    """Figure 13: CJS/CAO overlap of tracked communities vs time gap eta."""
    def run():
        graph = datasets["brightkite"]
        generator = CheckinGenerator(
            graph,
            TravelProfile(local_std=0.01, move_probability=0.1, move_distance_mean=0.25),
            seed=13,
        )
        candidate_users = list(range(min(graph.num_vertices, 600)))
        checkins = generator.generate(candidate_users, checkins_per_user=8, duration_days=40.0)
        travel = generator.total_travel_distance(checkins)
        queries = select_mobile_queries(graph, checkins, travel, count=12, min_friends=8)

        stream = LocationStream(graph, checkins)
        tracker = SACTracker(
            stream, k=4, algorithm="appfast", algorithm_params={"epsilon_f": 0.5}
        )
        timelines = tracker.track(queries)
        points = overlap_vs_time_gap(timelines, list(ETA_DAYS))
        return [
            {
                "eta_days": point.eta_days,
                "avg_cjs": point.average_cjs,
                "avg_cao": point.average_cao,
                "pairs": point.num_pairs,
            }
            for point in points
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig13_dynamic", "Figure 13: CJS and CAO vs time gap eta", rows)

    populated = [row for row in rows if row["pairs"] > 0]
    assert len(populated) >= 3, "expected at least three populated eta buckets"
    for row in populated:
        assert 0.0 <= row["avg_cjs"] <= 1.0
        assert 0.0 <= row["avg_cao"] <= 1.0
    # Overall decreasing trend: overlap at the shortest populated gaps exceeds
    # overlap at the longest populated gap (small slack absorbs sampling noise
    # from the modest number of tracked users).
    early_cjs = max(row["avg_cjs"] for row in populated[:2])
    early_cao = max(row["avg_cao"] for row in populated[:2])
    assert early_cjs >= populated[-1]["avg_cjs"] - 0.1
    assert early_cao >= populated[-1]["avg_cao"] - 0.1
