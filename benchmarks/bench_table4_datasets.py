"""Table 4 — dataset statistics.

Regenerates the paper's dataset-summary table (vertex count, edge count,
average degree) for the scaled-down stand-ins, alongside the sizes the paper
reports for the real datasets.
"""

from __future__ import annotations

import pytest

from bench_common import write_result
from repro.datasets.registry import DATASETS
from repro.graph.stats import summarize


@pytest.mark.benchmark(group="table4")
def test_table4_dataset_statistics(benchmark, datasets):
    """Table 4: vertex/edge counts and degree statistics of every dataset."""
    def build_table():
        rows = []
        for name, graph in datasets.items():
            summary = summarize(graph)
            spec = DATASETS[name]
            rows.append(
                {
                    "dataset": name,
                    "vertices": summary.num_vertices,
                    "edges": summary.num_edges,
                    "avg_degree": round(summary.average_degree, 2),
                    "paper_vertices": spec.paper_vertices,
                    "paper_edges": spec.paper_edges,
                    "paper_avg_degree": spec.average_degree,
                }
            )
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_result("table4_datasets", "Table 4: dataset statistics (stand-in vs paper)", rows)
    assert len(rows) == 6
    for row in rows:
        assert row["vertices"] > 0
        assert row["edges"] > 0
