"""Setup shim for environments without the wheel package (offline installs).

`pip install -e .` requires the `wheel` package for PEP 660 editable builds;
this shim lets `python setup.py develop` work as a fallback.
"""
from setuptools import setup

setup()
